package cluster

// Federation-layer tests: metrics piggybacked on heartbeats surface as
// per-worker labeled series and cluster_agg_* rollups on one
// coordinator scrape (with dead workers marked stale, not erased), the
// status document carries quantiles and SLO verdicts, and the spans a
// worker ships inside its completion push stitch into a single
// connected per-job trace even when another worker is killed mid-lease.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"twolevel/internal/chaos"
	"twolevel/internal/obs"
	"twolevel/internal/obs/span"
	"twolevel/internal/service"
)

func scrapeProm(t *testing.T, c *Coordinator) string {
	t.Helper()
	var b strings.Builder
	pw := obs.NewPromWriter(&b)
	c.WriteProm(pw)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestMetricsFederationAndStaleness(t *testing.T) {
	reg := obs.NewRegistry()
	mgr := service.New(service.Config{ExternalExecution: true, Metrics: reg})
	defer mgr.Close()
	slos, err := obs.ParseSLOs("p99:evaluate:500ms")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{
		Manager:   mgr,
		LeaseTTL:  150 * time.Millisecond,
		Heartbeat: 30 * time.Millisecond,
		Metrics:   reg,
		SLOs:      slos,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// A worker registry as a real worker would fill it: points evaluated,
	// an evaluation-latency histogram.
	wreg := obs.NewRegistry()
	wreg.Counter(MetricWorkerPoints).Add(5)
	wreg.Histogram("sweep_config_seconds", nil).Observe(0.01)
	snap := wreg.Snapshot()

	if code := postJSON(t, srv.URL+"/cluster/v1/register", registerRequest{ID: "w1"}, nil); code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	if code := postJSON(t, srv.URL+"/cluster/v1/heartbeat", heartbeatRequest{ID: "w1", Metrics: &snap}, nil); code != http.StatusNoContent {
		t.Fatalf("heartbeat: %d", code)
	}
	if n := reg.Counter(MetricFeedUpdates).Value(); n != 1 {
		t.Fatalf("feed updates = %d, want 1", n)
	}

	// One scrape carries the fleet: the worker's series labeled, the
	// rollup prefixed, the staleness gauge fresh, and the SLO verdict
	// evaluated over the federated histogram.
	out := scrapeProm(t, coord)
	for _, want := range []string{
		`cluster_worker_points_total{worker="w1"} 5`,
		`cluster_worker_stale{worker="w1"} 0`,
		"cluster_agg_cluster_worker_points_total 5",
		`sweep_config_seconds_count{worker="w1"} 1`,
		`slo_burn{metric="sweep_config_seconds",slo="p99:evaluate:500ms"}`,
		`slo_pass{metric="sweep_config_seconds",slo="p99:evaluate:500ms"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// The status document agrees: live worker, federated quantiles, a
	// passing verdict backed by the worker's single observation.
	var doc ClusterStatus
	resp, err := http.Get(srv.URL + "/cluster/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Workers) != 1 || doc.Workers[0].ID != "w1" || !doc.Workers[0].Live || doc.Workers[0].Stale {
		t.Fatalf("status workers = %+v", doc.Workers)
	}
	if q, ok := doc.Quantiles["sweep_config_seconds"]; !ok || q.Count != 1 {
		t.Fatalf("status quantiles = %+v", doc.Quantiles)
	}
	if len(doc.SLOs) != 1 || !doc.SLOs[0].Pass || doc.SLOs[0].Count != 1 {
		t.Fatalf("status SLOs = %+v", doc.SLOs)
	}

	// The worker goes silent; once reaped, its series survive but are
	// marked stale, and the rollup still counts its history.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter(MetricWorkersDead).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	out = scrapeProm(t, coord)
	for _, want := range []string{
		`cluster_worker_stale{worker="w1"} 1`,
		`cluster_worker_points_total{worker="w1"} 5`,
		"cluster_agg_cluster_worker_points_total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-death scrape missing %q:\n%s", want, out)
		}
	}
	var after ClusterStatus
	resp2, err := http.Get(srv.URL + "/cluster/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp2.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if len(after.Workers) != 1 || after.Workers[0].Live || !after.Workers[0].Stale {
		t.Fatalf("post-death status workers = %+v", after.Workers)
	}

	// A comeback clears the stale mark.
	if code := postJSON(t, srv.URL+"/cluster/v1/register", registerRequest{ID: "w1"}, nil); code != http.StatusOK {
		t.Fatalf("re-register: %d", code)
	}
	if out := scrapeProm(t, coord); !strings.Contains(out, `cluster_worker_stale{worker="w1"} 0`) {
		t.Errorf("re-registered worker still stale:\n%s", out)
	}
}

// TestWorkerFeedPayloadDelta proves the worker-side change detection:
// an unchanged registry piggybacks nothing, a changed one sends a full
// snapshot, and a nil registry never sends.
func TestWorkerFeedPayloadDelta(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Inc()
	w := NewWorker(WorkerConfig{Coordinator: "http://unused", Metrics: reg})

	fp1, snap1 := w.feedPayload()
	if snap1 == nil || snap1.Counters["c"] != 1 {
		t.Fatalf("first payload = %+v, want snapshot with c=1", snap1)
	}
	w.lastFeedFP = fp1 // as a successful beat would record

	if _, snap := w.feedPayload(); snap != nil {
		t.Errorf("unchanged registry still piggybacked %+v", snap)
	}
	reg.Counter("c").Inc()
	fp2, snap2 := w.feedPayload()
	if snap2 == nil || snap2.Counters["c"] != 2 {
		t.Errorf("changed registry payload = %+v", snap2)
	}
	if fp2 == fp1 {
		t.Errorf("fingerprint did not change with the registry")
	}

	none := NewWorker(WorkerConfig{Coordinator: "http://unused"})
	if _, snap := none.feedPayload(); snap != nil {
		t.Errorf("nil registry piggybacked %+v", snap)
	}
}

// TestStitchedTraceSurvivesWorkerKill is the tracing acceptance test: a
// worker dies mid-lease (its spans die with it), survivors complete the
// sweep, and the job's trace is one connected tree — every span's
// parent resolves, exactly one root, and every accepted evaluation
// carries its worker-side subtree.
func TestStitchedTraceSurvivesWorkerKill(t *testing.T) {
	tr := span.NewTracer()
	reg := obs.NewRegistry()
	mgr := service.New(service.Config{ExternalExecution: true, Metrics: reg, Trace: tr})
	defer mgr.Close()
	coord := NewCoordinator(CoordinatorConfig{
		Manager:        mgr,
		LeaseTTL:       250 * time.Millisecond,
		Heartbeat:      50 * time.Millisecond,
		MaxLeasePoints: 3,
		GrantWait:      100 * time.Millisecond,
		Metrics:        reg,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j, err := mgr.Submit(service.JobRequest{Workloads: []string{"gcc1"}, Options: clusterOptions()})
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker owns the first lease and dies after one
	// evaluation, unpushed.
	crashInj := chaos.New(1)
	crashInj.Install(chaos.Rule{Site: ChaosSiteWorkerCrash, Times: 1, Panic: "kill -9"})
	doomed := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		ID:           "w-doomed",
		Concurrency:  1,
		PollInterval: 20 * time.Millisecond,
		Chaos:        crashInj,
	})
	crashed := startWorker(ctx, doomed)
	select {
	case p := <-crashed:
		if p == nil {
			t.Fatal("doomed worker exited cleanly before the injected crash")
		}
	case <-time.After(time.Minute):
		t.Fatal("doomed worker never crashed")
	}

	var survivors []<-chan any
	for _, id := range []string{"w-a", "w-b"} {
		w := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			ID:           id,
			Concurrency:  1,
			PollInterval: 20 * time.Millisecond,
		})
		survivors = append(survivors, startWorker(ctx, w))
	}
	waitJob(t, j)
	cancel()
	for _, done := range survivors {
		select {
		case p := <-done:
			if p != nil {
				t.Fatalf("survivor panicked: %v", p)
			}
		case <-time.After(time.Minute):
			t.Fatal("survivor did not stop")
		}
	}

	spans := tr.Snapshot()
	byID := make(map[uint64]span.Data, len(spans))
	roots := 0
	for _, d := range spans {
		byID[d.ID] = d
	}
	for _, d := range spans {
		if d.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[d.Parent]
		if !ok {
			t.Errorf("orphan span %q (id %d): parent %d not in trace", d.Name, d.ID, d.Parent)
			continue
		}
		if d.StartNS < p.StartNS {
			t.Errorf("span %q starts at %d before its parent %q at %d", d.Name, d.StartNS, p.Name, p.StartNS)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want exactly 1 (the job span)", roots)
	}

	// Every accepted evaluation (9 points, none duplicated: the doomed
	// worker never pushed) contributed its worker-side subtree, each
	// parented under a remote-evaluate span of the matching key with the
	// simulate child below it.
	const points = 9
	workerSpans, simulates := 0, 0
	for _, d := range spans {
		switch d.Name {
		case "worker-evaluate":
			workerSpans++
			parent := byID[d.Parent]
			if parent.Name != "remote-evaluate" {
				t.Errorf("worker-evaluate parented under %q, want remote-evaluate", parent.Name)
			}
			if k := d.Attr("key"); k == "" || k != parent.Attr("key") {
				t.Errorf("worker-evaluate key %q does not match its parent's %q", k, parent.Attr("key"))
			}
			if d.Attr("worker") == "w-doomed" {
				t.Errorf("a dead worker's span leaked into the stitched trace")
			}
		case "simulate":
			simulates++
			if byID[d.Parent].Name != "worker-evaluate" {
				t.Errorf("simulate parented under %q", byID[d.Parent].Name)
			}
		}
	}
	if workerSpans != points {
		t.Errorf("stitched trace has %d worker-evaluate spans, want %d", workerSpans, points)
	}
	if simulates != points {
		t.Errorf("stitched trace has %d simulate spans, want %d", simulates, points)
	}
}

// BenchmarkFeedPayloadDisabled prices the heartbeat's federation hook
// when no registry is attached: the acceptance bar is "federation off
// costs nothing" — one nil check per beat.
func BenchmarkFeedPayloadDisabled(b *testing.B) {
	w := NewWorker(WorkerConfig{Coordinator: "http://unused"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, snap := w.feedPayload(); snap != nil {
			b.Fatal("nil registry produced a payload")
		}
	}
}

// BenchmarkFeedPayloadUnchanged prices the steady-state beat with a live
// registry whose contents have not moved: snapshot + marshal + crc32,
// then nothing on the wire.
func BenchmarkFeedPayloadUnchanged(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter(MetricWorkerPoints).Add(100)
	reg.Histogram("sweep_config_seconds", nil).Observe(0.01)
	w := NewWorker(WorkerConfig{Coordinator: "http://unused", Metrics: reg})
	fp, _ := w.feedPayload()
	w.lastFeedFP = fp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, snap := w.feedPayload(); snap != nil {
			b.Fatal("unchanged registry produced a payload")
		}
	}
}

// BenchmarkFeedPayloadChanged prices a beat that does ship: the registry
// moves every iteration, so each call snapshots and fingerprints fresh.
func BenchmarkFeedPayloadChanged(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter(MetricWorkerPoints)
	reg.Histogram("sweep_config_seconds", nil).Observe(0.01)
	w := NewWorker(WorkerConfig{Coordinator: "http://unused", Metrics: reg})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		fp, snap := w.feedPayload()
		if snap == nil {
			b.Fatal("changed registry produced no payload")
		}
		w.lastFeedFP = fp
	}
}
