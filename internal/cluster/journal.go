package cluster

// This file is the coordinator's crash journal: an append-only
// CRC32-framed JSONL log of cluster state changes (job admission, lease
// grant/renew/expiry, completion acceptance) under the same framing
// discipline as the durable store's segments (service/diskstore.go). A
// restarted coordinator replays it atop the DiskStore to rebuild the
// job table and the ready queue, and to mark the leases that were in
// flight at the crash as orphaned for reconciliation (coordinator.go).
//
// Durability discipline, mirroring the store:
//
//   - One record per line, {"crc": <IEEE CRC32 of rec>, "rec": {...}},
//     fsynced per append. A failed or torn append poisons the journal
//     (Err goes sticky, /readyz degrades) instead of risking framing on
//     top of a partial record — the next boot's replay truncates it.
//   - Replay truncates a newline-less tail (a torn final record cut off
//     by a crash) and skips CRC-failing complete lines (silent media
//     corruption), counting both.
//   - Compaction is crash-atomic checkpoint+truncate: the live state
//     (admitted jobs, outstanding leases, the job-id sequence) is
//     rewritten to a temp file, fsynced, and renamed over the journal,
//     so renewals and completed work stop accumulating forever. A crash
//     anywhere during compaction leaves either the old or the new file,
//     never a mix.
//
// The journal is ordering-correct by construction: every record is
// appended under the coordinator's own mutex, so grants precede the
// completions that trim them, and a "complete" record is appended only
// after Manager.Complete returned — i.e. after the point reached the
// store — so a crash between the two replays as a store hit, never as a
// lost point.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"twolevel/internal/chaos"
	"twolevel/internal/obs"
	"twolevel/internal/service"
)

// JournalFormat is the format tag of the journal's header line.
const JournalFormat = "twolevel-cluster-journal/1"

// journalFile is the journal's file name inside its directory.
const journalFile = "journal.jsonl"

// Journal record operations.
const (
	// journalOpJob records a job admission: id plus the full
	// serializable request, enough to re-Submit it on replay.
	journalOpJob = "job"
	// journalOpJobEnd records a job reaching a terminal state; on replay
	// the job is not rehydrated.
	journalOpJobEnd = "job-end"
	// journalOpGrant records a lease grant (or the re-grant that
	// supersedes an orphaned lease after reconciliation).
	journalOpGrant = "grant"
	// journalOpRenew records a heartbeat renewal; replay ignores it, but
	// it keeps the journal an honest change log and feeds compaction.
	journalOpRenew = "renew"
	// journalOpExpire records a lease expiry or steal; its keys are no
	// longer attributed to the worker.
	journalOpExpire = "expire"
	// journalOpComplete records one accepted completion, appended after
	// the point reached the store; replay trims it from any live lease.
	journalOpComplete = "complete"
)

// journalHeader is the first line of the journal. Seq persists the
// manager's job-id sequence across compactions, so job ids stay unique
// even after the admissions that produced them are compacted away.
type journalHeader struct {
	Format string `json:"format"`
	Seq    int    `json:"seq"`
}

// journalRecord is the rec payload of one framed line.
type journalRecord struct {
	Op string `json:"op"`

	// job / job-end
	Job   string   `json:"job,omitempty"`
	State string   `json:"state,omitempty"`
	Req   *jobWire `json:"req,omitempty"`

	// grant / renew / expire
	Lease  string   `json:"lease,omitempty"`
	Worker string   `json:"worker,omitempty"`
	Keys   []string `json:"keys,omitempty"`

	// complete
	Key string `json:"key,omitempty"`
	OK  bool   `json:"ok,omitempty"`
}

// journalFrame is one framed line: CRC32 (IEEE) over the raw rec bytes.
type journalFrame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// JournalOptions parameterizes OpenJournal.
type JournalOptions struct {
	// CompactMinDead is how many dead records (renewals, expired leases,
	// completed work, ended jobs) accumulate before an append triggers
	// checkpoint+truncate compaction (default 4096; <0 disables).
	CompactMinDead int
	// Metrics, when non-nil, receives the journal instrumentation (see
	// the MetricJournal* names). Nil costs nothing.
	Metrics *obs.Registry
	// Chaos fires at ChaosSiteJournalAppend / Replay / Compact.
	Chaos *chaos.Injector
}

// JournaledJob is one job that was live (admitted, not terminal) when
// the journal was last written; Recover re-submits it under its
// original id, where already-stored points land as store hits.
type JournaledJob struct {
	ID  string
	Req service.JobRequest
}

// JournaledLease is one lease that was outstanding at the crash. Its
// keys are the orphan candidates: each is either reclaimed by its
// worker re-registering with the key in flight, completed by a buffered
// push, or stolen back to the ready queue when the grace TTL expires.
type JournaledLease struct {
	ID     string
	Worker string
	Keys   []string
}

// JournalReplay is what replaying the journal recovered.
type JournalReplay struct {
	Jobs   []JournaledJob
	Leases []JournaledLease
	// Seq is the job-id sequence floor (max of the header's checkpoint
	// and every replayed admission).
	Seq int
	// Records counts good records replayed; TornRepaired counts
	// newline-less tails truncated; CorruptDropped counts CRC-failing
	// complete lines skipped.
	Records        int
	TornRepaired   int
	CorruptDropped int
}

// JournalStats is the journal's live status, surfaced in
// GET /cluster/v1/status (failover section).
type JournalStats struct {
	Path           string  `json:"path"`
	Records        int     `json:"records"`
	Appends        uint64  `json:"appends_total"`
	Compactions    uint64  `json:"compactions_total"`
	TornRepaired   int     `json:"torn_repaired"`
	CorruptDropped int     `json:"corrupt_dropped"`
	LastCompactAgo float64 `json:"last_compaction_ago_s"` // -1: never compacted
	Error          string  `json:"error,omitempty"`
}

// journalState is the incremental mirror of the journal's live content:
// admitted-not-ended jobs and granted-not-expired leases (with their
// uncompleted keys). It is both the replay product and the compaction
// checkpoint source.
type journalState struct {
	jobOrder   []string
	jobs       map[string]*jobWire
	leaseOrder []string
	leases     map[string]*journalLease
	maxSeq     int
}

type journalLease struct {
	worker string
	keys   map[string]struct{}
}

func newJournalState() *journalState {
	return &journalState{
		jobs:   make(map[string]*jobWire),
		leases: make(map[string]*journalLease),
	}
}

// apply folds one record into the state, returning how many previously
// live records it made dead (compaction pressure).
func (s *journalState) apply(rec journalRecord) int {
	dead := 0
	switch rec.Op {
	case journalOpJob:
		if rec.Req == nil || rec.Job == "" {
			return 1 // malformed admission: nothing to rehydrate
		}
		if _, ok := s.jobs[rec.Job]; !ok {
			s.jobOrder = append(s.jobOrder, rec.Job)
		}
		s.jobs[rec.Job] = rec.Req
		if n, ok := jobSeq(rec.Job); ok && n > s.maxSeq {
			s.maxSeq = n
		}
	case journalOpJobEnd:
		if _, ok := s.jobs[rec.Job]; ok {
			delete(s.jobs, rec.Job)
			dead += 2 // the admission and this record
		} else {
			dead++
		}
	case journalOpGrant:
		// A re-grant supersedes: the keys leave whatever lease held them
		// (reconciliation re-leasing an orphan, or a steal re-lease), and
		// a lease emptied that way is dead.
		for _, k := range rec.Keys {
			dead += s.dropKey(k)
		}
		l := &journalLease{worker: rec.Worker, keys: make(map[string]struct{}, len(rec.Keys))}
		for _, k := range rec.Keys {
			l.keys[k] = struct{}{}
		}
		if _, ok := s.leases[rec.Lease]; !ok {
			s.leaseOrder = append(s.leaseOrder, rec.Lease)
		}
		s.leases[rec.Lease] = l
	case journalOpRenew:
		dead++ // replay ignores renewals entirely
	case journalOpExpire:
		if _, ok := s.leases[rec.Lease]; ok {
			s.dropLease(rec.Lease)
			dead += 2 // the grant and this record
		} else {
			dead++
		}
	case journalOpComplete:
		dead += 1 + s.dropKey(rec.Key) // this record, plus any emptied lease
	default:
		dead++ // unknown op from a future writer: ignore, compactable
	}
	return dead
}

// dropKey removes a key from every lease holding it, dropping leases
// that empty out; it returns how many lease grants became dead.
func (s *journalState) dropKey(key string) int {
	dead := 0
	for id, l := range s.leases {
		if _, ok := l.keys[key]; !ok {
			continue
		}
		delete(l.keys, key)
		if len(l.keys) == 0 {
			s.dropLease(id)
			dead++
		}
	}
	return dead
}

func (s *journalState) dropLease(id string) {
	delete(s.leases, id)
	for i, v := range s.leaseOrder {
		if v == id {
			s.leaseOrder = append(s.leaseOrder[:i], s.leaseOrder[i+1:]...)
			break
		}
	}
}

// live counts the records a checkpoint of this state would write.
func (s *journalState) live() int { return len(s.jobs) + len(s.leases) }

// jobSeq parses the numeric sequence out of a manager job id ("j17").
func jobSeq(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n, err == nil && strings.HasPrefix(id, "j")
}

// Journal is the coordinator's crash journal. OpenJournal replays and
// returns one; a nil *Journal is valid and inert, so the coordinator
// calls the Record* hooks unconditionally.
type Journal struct {
	dir  string
	path string
	opt  JournalOptions
	inj  *chaos.Injector
	met  *journalMetrics

	mu          sync.Mutex
	f           *os.File
	state       *journalState
	replay      JournalReplay
	records     int // good records currently framed in the file
	dead        int // records a checkpoint would drop
	appends     uint64
	compactions uint64
	lastCompact time.Time // zero: never compacted since open
	err         error     // sticky: the journal no longer persists
	closed      bool
}

type journalMetrics struct {
	appends        *obs.Counter
	compactions    *obs.Counter
	tornRepaired   *obs.Counter
	corruptDropped *obs.Counter
}

func newJournalMetrics(r *obs.Registry) *journalMetrics {
	return &journalMetrics{
		appends:        r.Counter(MetricJournalAppends),
		compactions:    r.Counter(MetricJournalCompactions),
		tornRepaired:   r.Counter(MetricJournalTornRepaired),
		corruptDropped: r.Counter(MetricJournalCorruptDropped),
	}
}

// OpenJournal opens (creating if needed) the cluster journal in dir and
// replays it. The replayed state is available from Replayed until the
// journal is closed; Record* appends require the returned journal.
func OpenJournal(dir string, opt JournalOptions) (*Journal, error) {
	if opt.CompactMinDead == 0 {
		opt.CompactMinDead = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: journal dir: %w", err)
	}
	j := &Journal{
		dir:   dir,
		path:  filepath.Join(dir, journalFile),
		opt:   opt,
		inj:   opt.Chaos,
		met:   newJournalMetrics(opt.Metrics),
		state: newJournalState(),
	}
	if err := j.inj.Hit(ChaosSiteJournalReplay); err != nil {
		return nil, fmt.Errorf("cluster: journal replay: %w", err)
	}
	if err := j.open(); err != nil {
		return nil, err
	}
	return j, nil
}

// open reads, repairs, and replays the journal file, leaving j.f
// positioned for appends.
func (j *Journal) open() error {
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: opening journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck // error path
		return fmt.Errorf("cluster: journal stat: %w", err)
	}
	if info.Size() == 0 {
		if err := j.writeHeader(f, 0); err != nil {
			f.Close() //nolint:errcheck // error path
			return err
		}
		j.f = f
		return nil
	}

	// Replay. A torn tail (final line without its newline — a record cut
	// off mid-write by a crash) is truncated; a complete line that fails
	// JSON or CRC is silent corruption the frame checksum exists to
	// catch: skipped and counted, replay continues.
	r := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	line, err := r.ReadBytes('\n')
	if err != nil {
		// The header itself is torn: the crash hit the very first write.
		// Start the journal over — there were no records to lose.
		if terr := f.Truncate(0); terr != nil {
			f.Close() //nolint:errcheck // error path
			return fmt.Errorf("cluster: repairing torn journal header: %w", terr)
		}
		if _, serr := f.Seek(0, 0); serr != nil {
			f.Close() //nolint:errcheck // error path
			return fmt.Errorf("cluster: repairing torn journal header: %w", serr)
		}
		j.replay.TornRepaired++
		j.met.tornRepaired.Inc()
		if err := j.writeHeader(f, 0); err != nil {
			f.Close() //nolint:errcheck // error path
			return err
		}
		j.f = f
		return nil
	}
	var hdr journalHeader
	if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Format != JournalFormat {
		f.Close() //nolint:errcheck // error path
		return fmt.Errorf("cluster: %s is not a %s journal", j.path, JournalFormat)
	}
	j.state.maxSeq = hdr.Seq
	offset += int64(len(line))

	for {
		line, err = r.ReadBytes('\n')
		if err != nil {
			if len(line) > 0 {
				// Newline-less tail at EOF: the torn final record.
				if terr := f.Truncate(offset); terr != nil {
					f.Close() //nolint:errcheck // error path
					return fmt.Errorf("cluster: truncating torn journal tail: %w", terr)
				}
				j.replay.TornRepaired++
				j.met.tornRepaired.Inc()
			}
			break
		}
		rec, derr := decodeJournalLine(line)
		if derr != nil {
			j.replay.CorruptDropped++
			j.met.corruptDropped.Inc()
			offset += int64(len(line))
			continue
		}
		j.dead += j.state.apply(rec)
		j.records++
		j.replay.Records++
		offset += int64(len(line))
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close() //nolint:errcheck // error path
		return fmt.Errorf("cluster: seeking journal end: %w", err)
	}
	j.f = f
	j.snapshotReplay()
	return nil
}

// snapshotReplay freezes the replayed live state into j.replay.
func (j *Journal) snapshotReplay() {
	j.replay.Seq = j.state.maxSeq
	for _, id := range j.state.jobOrder {
		jw, ok := j.state.jobs[id]
		if !ok {
			continue
		}
		j.replay.Jobs = append(j.replay.Jobs, JournaledJob{ID: id, Req: jw.toRequest()})
	}
	for _, id := range j.state.leaseOrder {
		l, ok := j.state.leases[id]
		if !ok {
			continue
		}
		keys := make([]string, 0, len(l.keys))
		for k := range l.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		j.replay.Leases = append(j.replay.Leases, JournaledLease{ID: id, Worker: l.worker, Keys: keys})
	}
}

func (j *Journal) writeHeader(f *os.File, seq int) error {
	b, err := json.Marshal(journalHeader{Format: JournalFormat, Seq: seq})
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("cluster: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing journal header: %w", err)
	}
	return nil
}

func encodeJournalLine(rec journalRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(journalFrame{CRC: crc32.ChecksumIEEE(body), Rec: body})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

func decodeJournalLine(line []byte) (journalRecord, error) {
	var fr journalFrame
	var rec journalRecord
	if err := json.Unmarshal(line, &fr); err != nil {
		return rec, err
	}
	if crc32.ChecksumIEEE(fr.Rec) != fr.CRC {
		return rec, fmt.Errorf("cluster: journal record crc mismatch")
	}
	if err := json.Unmarshal(fr.Rec, &rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// Replayed returns what opening the journal recovered. Nil-safe.
func (j *Journal) Replayed() JournalReplay {
	if j == nil {
		return JournalReplay{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replay
}

// Err reports the journal's sticky persistence failure: non-nil means
// state changes are no longer reaching disk and a restart would replay
// a stale tail. The coordinator surfaces it through /readyz. Nil-safe.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats snapshots the journal for the status document. Nil-safe.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Path:           j.path,
		Records:        j.records,
		Appends:        j.appends,
		Compactions:    j.compactions,
		TornRepaired:   j.replay.TornRepaired,
		CorruptDropped: j.replay.CorruptDropped,
		LastCompactAgo: -1,
	}
	if !j.lastCompact.IsZero() {
		st.LastCompactAgo = time.Since(j.lastCompact).Seconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Close fsyncs and closes the journal. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if j.f != nil {
		j.f.Sync()  //nolint:errcheck // appends already synced
		j.f.Close() //nolint:errcheck // read side done
		j.f = nil
	}
	return j.err
}

// --- the coordinator-facing record hooks --------------------------------

// RecordAdmission journals a job admission with its full request, so a
// restart can re-submit it. Nil-safe.
func (j *Journal) RecordAdmission(id string, req service.JobRequest) {
	jw := jobToWire(req)
	j.append(journalRecord{Op: journalOpJob, Job: id, Req: &jw})
}

// RecordJobEnd journals a job's terminal transition. Nil-safe.
func (j *Journal) RecordJobEnd(id string, state string) {
	j.append(journalRecord{Op: journalOpJobEnd, Job: id, State: state})
}

// RecordGrant journals a lease grant. Nil-safe.
func (j *Journal) RecordGrant(leaseID, worker string, keys []string) {
	j.append(journalRecord{Op: journalOpGrant, Lease: leaseID, Worker: worker, Keys: keys})
}

// RecordRenew journals a heartbeat renewal of a lease. Nil-safe.
func (j *Journal) RecordRenew(leaseID string) {
	j.append(journalRecord{Op: journalOpRenew, Lease: leaseID})
}

// RecordExpire journals a lease expiry or steal. Nil-safe.
func (j *Journal) RecordExpire(leaseID string) {
	j.append(journalRecord{Op: journalOpExpire, Lease: leaseID})
}

// RecordComplete journals one accepted completion. Callers append it
// only after Manager.Complete returned, so the store already holds the
// point and a crash between the two replays as a store hit. Nil-safe.
func (j *Journal) RecordComplete(key string, ok bool) {
	j.append(journalRecord{Op: journalOpComplete, Key: key, OK: ok})
}

// append frames, writes, fsyncs, and folds one record, compacting when
// enough dead records accumulated. Nil-safe; a persistence failure
// poisons the journal (appends stop, Err goes sticky) rather than
// leaving a half-framed line for the next replay to misread.
func (j *Journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.f == nil {
		return
	}
	line, err := encodeJournalLine(rec)
	if err != nil {
		j.failLocked(fmt.Errorf("cluster: encoding journal record: %w", err))
		return
	}
	if _, err := j.inj.Writer(ChaosSiteJournalAppend, j.f).Write(line); err != nil {
		// A torn or failed append is crash-equivalent: whatever partial
		// bytes landed are exactly what replay's torn-tail truncation
		// repairs. Stop writing instead of framing on top of them.
		j.failLocked(fmt.Errorf("cluster: journal append: %w", err))
		return
	}
	if err := j.f.Sync(); err != nil {
		j.failLocked(fmt.Errorf("cluster: journal sync: %w", err))
		return
	}
	j.appends++
	j.met.appends.Inc()
	j.records++
	j.dead += j.state.apply(rec)
	if j.opt.CompactMinDead > 0 && j.dead >= j.opt.CompactMinDead {
		j.compactLocked()
	}
}

func (j *Journal) failLocked(err error) {
	j.err = err
	if j.f != nil {
		j.f.Close() //nolint:errcheck // already failing
		j.f = nil
	}
}

// Compact forces a checkpoint+truncate compaction. Nil-safe.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.f == nil {
		return j.err
	}
	j.compactLocked()
	return j.err
}

// compactLocked rewrites the journal to just its live state: header
// (carrying the job-id sequence), one admission per live job, one grant
// per live lease. The rewrite goes to a temp file, is fsynced, and is
// renamed over the journal — crash-atomic, exactly like the store's
// segment compaction. Caller holds j.mu.
func (j *Journal) compactLocked() {
	if err := j.inj.Hit(ChaosSiteJournalCompact); err != nil {
		// An injected compaction fault aborts the compaction, not the
		// journal: appends continue on the uncompacted file.
		j.dead = 0 // don't retrigger on every append
		return
	}
	tmp, err := os.CreateTemp(j.dir, "journal-compact-*.tmp")
	if err != nil {
		j.failLocked(fmt.Errorf("cluster: journal compact: %w", err))
		return
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after rename
	w := bufio.NewWriter(tmp)
	hdr, err := json.Marshal(journalHeader{Format: JournalFormat, Seq: j.state.maxSeq})
	if err == nil {
		_, err = w.Write(append(hdr, '\n'))
	}
	records := 0
	if err == nil {
		for _, id := range j.state.jobOrder {
			jw, ok := j.state.jobs[id]
			if !ok {
				continue
			}
			line, lerr := encodeJournalLine(journalRecord{Op: journalOpJob, Job: id, Req: jw})
			if lerr == nil {
				_, lerr = w.Write(line)
			}
			if lerr != nil {
				err = lerr
				break
			}
			records++
		}
	}
	if err == nil {
		for _, id := range j.state.leaseOrder {
			l, ok := j.state.leases[id]
			if !ok {
				continue
			}
			keys := make([]string, 0, len(l.keys))
			for k := range l.keys {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line, lerr := encodeJournalLine(journalRecord{Op: journalOpGrant, Lease: id, Worker: l.worker, Keys: keys})
			if lerr == nil {
				_, lerr = w.Write(line)
			}
			if lerr != nil {
				err = lerr
				break
			}
			records++
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		j.failLocked(fmt.Errorf("cluster: journal compact: %w", err))
		return
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		j.failLocked(fmt.Errorf("cluster: journal compact rename: %w", err))
		return
	}
	syncJournalDir(j.dir)
	// Swap the append handle onto the compacted file.
	j.f.Close() //nolint:errcheck // replaced by rename
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		j.failLocked(fmt.Errorf("cluster: reopening compacted journal: %w", err))
		return
	}
	j.f = f
	j.records = records
	j.dead = 0
	j.compactions++
	j.met.compactions.Inc()
	j.lastCompact = time.Now()
}

// syncJournalDir best-effort fsyncs the journal directory so the
// compaction rename is durable.
func syncJournalDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck // best-effort
	d.Close() //nolint:errcheck // read side
}
