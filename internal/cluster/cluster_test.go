package cluster

// The cluster's robustness contract, proven deterministically:
//
//   - TestKillWorkerMidSweepByteIdentical is the acceptance test: three
//     workers, chaos kills one mid-sweep (unpushed results and all), and
//     the final envelope document is byte-identical to a single-node run
//     with zero lost and zero double-counted evaluations.
//   - TestZombieCompletionIsIdempotentNoOp drives the wire protocol by
//     hand: a worker goes silent, its lease is stolen and re-run
//     elsewhere, and then the zombie pushes its stale results — which
//     must land as duplicates, never a double delivery.
//   - TestChaosOnCoordinatorEndpoints proves workers ride out injected
//     coordinator-side failures on register and complete.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"twolevel/internal/chaos"
	"twolevel/internal/obs"
	"twolevel/internal/service"
	"twolevel/internal/spec"
	"twolevel/internal/sweep"
)

// clusterOptions is a 9-point design space: enough work for three
// workers and a mid-sweep crash, cheap enough for CI.
func clusterOptions() sweep.Options {
	return sweep.Options{
		Refs:    20_000,
		L1Sizes: []int64{1 << 10, 2 << 10, 4 << 10},
		L2Sizes: []int64{0, 8 << 10, 16 << 10},
	}
}

// saveJobJSON renders a finished job's points as the canonical envelope
// document — the byte-identity yardstick.
func saveJobJSON(t *testing.T, j *service.Job) []byte {
	t.Helper()
	pts := j.Points()
	sweep.SortByArea(pts)
	var buf bytes.Buffer
	if err := sweep.SaveJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitJob(t *testing.T, j *service.Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", j.ID(), err)
	}
}

// startWorker runs w in a goroutine and returns a channel that carries
// the recovered panic value (nil for a clean exit). The recover stands
// where a supervisor would: a crashed worker process dies, the test
// process must not.
func startWorker(ctx context.Context, w *Worker) <-chan any {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		w.Run(ctx) //nolint:errcheck // exercised via job completion
	}()
	return done
}

// TestKillWorkerMidSweepByteIdentical is the issue's acceptance test.
func TestKillWorkerMidSweepByteIdentical(t *testing.T) {
	req := service.JobRequest{Workloads: []string{"gcc1"}, Options: clusterOptions()}

	// Single-node reference: today's standalone manager.
	solo := service.New(service.Config{Workers: 2})
	jSolo, err := solo.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jSolo)
	want := saveJobJSON(t, jSolo)
	solo.Close()

	// Cluster under test: external-execution manager + coordinator with
	// an aggressive lease TTL so stealing happens in test time.
	reg := obs.NewRegistry()
	mgr := service.New(service.Config{ExternalExecution: true, Metrics: reg})
	defer mgr.Close()
	coord := NewCoordinator(CoordinatorConfig{
		Manager:        mgr,
		LeaseTTL:       250 * time.Millisecond,
		Heartbeat:      50 * time.Millisecond,
		MaxLeasePoints: 3,
		GrantWait:      100 * time.Millisecond,
		Metrics:        reg,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker starts alone so it deterministically owns the
	// first lease; a chaos Panic rule kills it after its first
	// evaluation, with every result of the lease unpushed.
	crashInj := chaos.New(1)
	crashInj.Install(chaos.Rule{Site: ChaosSiteWorkerCrash, Times: 1, Panic: "kill -9"})
	doomed := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		ID:           "w-doomed",
		Concurrency:  1,
		PollInterval: 20 * time.Millisecond,
		Chaos:        crashInj,
	})
	crashed := startWorker(ctx, doomed)
	select {
	case p := <-crashed:
		if p == nil {
			t.Fatal("doomed worker exited cleanly before the injected crash")
		}
	case <-time.After(time.Minute):
		t.Fatal("doomed worker never crashed")
	}
	if got := crashInj.Fired(ChaosSiteWorkerCrash); got != 1 {
		t.Fatalf("crash site fired %d times, want 1", got)
	}

	// Two survivors finish the sweep, re-running the stolen points.
	var survivors []<-chan any
	for _, id := range []string{"w-a", "w-b"} {
		w := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			ID:           id,
			Concurrency:  1,
			PollInterval: 20 * time.Millisecond,
		})
		survivors = append(survivors, startWorker(ctx, w))
	}

	waitJob(t, j)
	st := j.Status()
	if st.State != service.StateDone {
		t.Fatalf("cluster job state = %s (errors: %v), want done", st.State, st.Errors)
	}

	// Byte identity against the single-node envelope.
	got := saveJobJSON(t, j)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster envelope differs from single-node envelope:\n--- cluster\n%s\n--- solo\n%s", got, want)
	}

	// Zero lost: every point completed. Zero double-counted: completions
	// equal the design-space size exactly, and nothing was delivered
	// twice (no duplicates were even pushed — the doomed worker died
	// before pushing).
	const points = 9
	if n := reg.Counter(MetricPointsCompleted).Value(); n != points {
		t.Fatalf("points completed = %d, want %d", n, points)
	}
	if n := reg.Counter(MetricPointsFailed).Value(); n != 0 {
		t.Fatalf("points failed = %d, want 0", n)
	}
	if n := mgr.Store().Len(); n != points {
		t.Fatalf("store holds %d points, want %d", n, points)
	}

	// The crash was observed as theft: at least one lease expired and
	// its points were stolen and re-leased.
	if n := reg.Counter(MetricLeasesExpired).Value(); n == 0 {
		t.Fatal("no lease expired despite the worker crash")
	}
	if n := reg.Counter(MetricPointsStolen).Value(); n == 0 {
		t.Fatal("no points were stolen despite the worker crash")
	}
	if n := reg.Counter(MetricWorkersDead).Value(); n != 1 {
		t.Fatalf("workers declared dead = %d, want 1", n)
	}

	// Survivors exit cleanly on cancel.
	cancel()
	for _, done := range survivors {
		select {
		case p := <-done:
			if p != nil {
				t.Fatalf("survivor panicked: %v", p)
			}
		case <-time.After(time.Minute):
			t.Fatal("survivor did not stop")
		}
	}
}

// postJSON drives one protocol RPC by hand.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestZombieCompletionIsIdempotentNoOp walks the full stolen-lease
// story at the wire level: lease to A, A goes silent, the lease expires
// and is re-leased to B, B completes, and then zombie A pushes the same
// results — which must count as duplicates and change nothing.
func TestZombieCompletionIsIdempotentNoOp(t *testing.T) {
	reg := obs.NewRegistry()
	mgr := service.New(service.Config{ExternalExecution: true, Metrics: reg})
	defer mgr.Close()
	coord := NewCoordinator(CoordinatorConfig{
		Manager:   mgr,
		LeaseTTL:  120 * time.Millisecond,
		Heartbeat: 30 * time.Millisecond,
		GrantWait: time.Second,
		Metrics:   reg,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	opt := sweep.Options{Refs: 10_000, L1Sizes: []int64{1 << 10}, L2Sizes: []int64{8 << 10}}
	j, err := mgr.Submit(service.JobRequest{Workloads: []string{"gcc1"}, Options: opt})
	if err != nil {
		t.Fatal(err)
	}

	// A registers and takes the only point.
	if code := postJSON(t, srv.URL+"/cluster/v1/register", registerRequest{ID: "a"}, nil); code != http.StatusOK {
		t.Fatalf("register a: %d", code)
	}
	var leaseA leaseResponse
	if code := postJSON(t, srv.URL+"/cluster/v1/lease", leaseRequest{ID: "a", MaxPoints: 1}, &leaseA); code != http.StatusOK {
		t.Fatalf("lease a: %d", code)
	}
	if len(leaseA.Units) != 1 {
		t.Fatalf("lease a carries %d units, want 1", len(leaseA.Units))
	}
	u := leaseA.Units[0]

	// Evaluate the unit exactly as a worker would, once; by determinism
	// both A's and B's pushes are these same bytes.
	if err := validateUnit(u); err != nil {
		t.Fatal(err)
	}
	wl, err := spec.ByName(u.Workload)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sweep.NewEvaluator(wl, u.Options.toOptions()).Evaluate(context.Background(), u.Config)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := sweep.MarshalPointJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	result := resultWire{Key: u.Key, Point: pj}

	// A never heartbeats: the lease expires, the point is stolen, A is
	// declared dead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := coord.Stats()
		if s.PointsReady == 1 && s.LeasesActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// B picks the stolen point up and completes it.
	if code := postJSON(t, srv.URL+"/cluster/v1/register", registerRequest{ID: "b"}, nil); code != http.StatusOK {
		t.Fatalf("register b: %d", code)
	}
	var leaseB leaseResponse
	if code := postJSON(t, srv.URL+"/cluster/v1/lease", leaseRequest{ID: "b", MaxPoints: 1}, &leaseB); code != http.StatusOK {
		t.Fatalf("lease b: %d", code)
	}
	if len(leaseB.Units) != 1 || leaseB.Units[0].Key != u.Key {
		t.Fatalf("lease b did not receive the stolen unit: %+v", leaseB)
	}
	var respB completeResponse
	if code := postJSON(t, srv.URL+"/cluster/v1/complete",
		completeRequest{ID: "b", LeaseID: leaseB.LeaseID, Results: []resultWire{result}}, &respB); code != http.StatusOK {
		t.Fatalf("complete b: %d", code)
	}
	if respB.Accepted != 1 || respB.Duplicates != 0 {
		t.Fatalf("complete b = %+v, want accepted 1", respB)
	}
	waitJob(t, j)
	if st := j.Status(); st.State != service.StateDone || len(j.Points()) != 1 {
		t.Fatalf("job after B's completion: %+v", st)
	}

	// Zombie A rises and pushes the stale lease: an idempotent no-op.
	var respA completeResponse
	if code := postJSON(t, srv.URL+"/cluster/v1/complete",
		completeRequest{ID: "a", LeaseID: leaseA.LeaseID, Results: []resultWire{result}}, &respA); code != http.StatusOK {
		t.Fatalf("complete a: %d", code)
	}
	if respA.Accepted != 0 || respA.Duplicates != 1 {
		t.Fatalf("zombie completion = %+v, want 1 duplicate", respA)
	}
	if n := reg.Counter(MetricDuplicateResults).Value(); n != 1 {
		t.Fatalf("duplicate counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricPointsCompleted).Value(); n != 1 {
		t.Fatalf("points completed = %d, want exactly 1", n)
	}
	if n := mgr.Store().Len(); n != 1 {
		t.Fatalf("store holds %d points, want 1", n)
	}

	// The whole episode cost one theft and one death, observably.
	if n := reg.Counter(MetricPointsStolen).Value(); n != 1 {
		t.Fatalf("points stolen = %d, want 1", n)
	}
	if n := reg.Counter(MetricWorkersDead).Value(); n != 1 {
		t.Fatalf("workers dead = %d, want 1", n)
	}
}

// TestChaosOnCoordinatorEndpoints: injected faults on the coordinator's
// register and complete handlers answer 503 and the worker's retry
// machinery rides them out — the job still completes exactly.
func TestChaosOnCoordinatorEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	inj := chaos.New(7)
	inj.Install(chaos.Rule{Site: ChaosSiteRegister, Times: 2})
	inj.Install(chaos.Rule{Site: ChaosSiteComplete, Times: 1})

	mgr := service.New(service.Config{ExternalExecution: true, Metrics: reg})
	defer mgr.Close()
	coord := NewCoordinator(CoordinatorConfig{
		Manager:   mgr,
		LeaseTTL:  2 * time.Second,
		GrantWait: 100 * time.Millisecond,
		Metrics:   reg,
		Chaos:     inj,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		ID:           "w-1",
		Concurrency:  2,
		PollInterval: 20 * time.Millisecond,
		Metrics:      reg,
	})
	done := startWorker(ctx, w)

	opt := sweep.Options{Refs: 10_000, L1Sizes: []int64{1 << 10, 2 << 10}, L2Sizes: []int64{0, 8 << 10}}
	j, err := mgr.Submit(service.JobRequest{Workloads: []string{"gcc1"}, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if st := j.Status(); st.State != service.StateDone || len(j.Points()) != 4 {
		t.Fatalf("job under endpoint chaos: %+v", st)
	}
	if n := inj.Fired(ChaosSiteRegister); n != 2 {
		t.Fatalf("register faults fired = %d, want 2", n)
	}
	if n := inj.Fired(ChaosSiteComplete); n != 1 {
		t.Fatalf("complete faults fired = %d, want 1", n)
	}
	if n := reg.Counter(MetricWorkerRPCRetries).Value(); n == 0 {
		t.Fatal("worker reported no RPC retries despite injected faults")
	}

	cancel()
	select {
	case p := <-done:
		if p != nil {
			t.Fatalf("worker panicked: %v", p)
		}
	case <-time.After(time.Minute):
		t.Fatal("worker did not stop")
	}
}
