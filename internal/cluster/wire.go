package cluster

// This file is the coordinator↔worker wire protocol. The exactness
// contract lives here: a work unit carries the workload name, the full
// hierarchy geometry (core.Config, whose fields are all
// JSON-round-trip-exact), and the result-determining subset of
// sweep.Options, so a worker rebuilds an evaluator that produces the
// byte-identical point a local evaluation would — and both sides can
// recompute sweep.Key from the unit to prove it. Completed points
// travel back as persisted twolevel-sweep/1 point documents
// (sweep.MarshalPointJSON), the same representation the durable store
// journals, which round-trips through JSON without changing the bytes
// sweep.SaveJSON later renders.

import (
	"encoding/json"
	"fmt"
	"time"

	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/obs"
	"twolevel/internal/obs/span"
	"twolevel/internal/service"
	"twolevel/internal/spec"
	"twolevel/internal/sweep"
	"twolevel/internal/timing"
)

// spanData is the wire form of one finished worker span — span.Data is
// already a flat JSON record, so the trace protocol reuses it verbatim.
type spanData = span.Data

// wireOptions is the result-determining + hardening subset of
// sweep.Options a work unit ships. Enumeration-only fields (size lists)
// and runtime plumbing (metrics, events, chaos, trace) stay on each
// side; the configuration geometry rides separately in workUnit.Config.
type wireOptions struct {
	TechScale    float64 `json:"tech_scale"`
	TechAddrBits int     `json:"tech_addr_bits"`
	OffChipNS    float64 `json:"offchip_ns"`
	DualPorted   bool    `json:"dual_ported,omitempty"`
	Refs         uint64  `json:"refs"`
	// TimeoutNS and Retries reproduce the per-configuration hardening,
	// so a remote evaluation retries and times out exactly as a local
	// one would.
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
	Retries   int   `json:"retries,omitempty"`
}

// optionsToWire extracts the wire subset from a defaulted option set.
func optionsToWire(o sweep.Options) wireOptions {
	return wireOptions{
		TechScale:    o.Tech.Scale,
		TechAddrBits: o.Tech.AddrBits,
		OffChipNS:    o.OffChipNS,
		DualPorted:   o.DualPorted,
		Refs:         o.Refs,
		TimeoutNS:    int64(o.Timeout),
		Retries:      o.Retries,
	}
}

// toOptions rebuilds the evaluator option set on the worker.
func (w wireOptions) toOptions() sweep.Options {
	return sweep.Options{
		Tech:       timing.Tech{Scale: w.TechScale, AddrBits: w.TechAddrBits},
		OffChipNS:  w.OffChipNS,
		DualPorted: w.DualPorted,
		Refs:       w.Refs,
		Timeout:    time.Duration(w.TimeoutNS),
		Retries:    w.Retries,
	}
}

// workUnit is one leased (workload, configuration) evaluation.
type workUnit struct {
	// Key is the point's content address (sweep.Key). The worker
	// recomputes it from the unit and refuses to evaluate on a mismatch,
	// so protocol drift can never alias two different evaluations.
	Key      string      `json:"key"`
	Workload string      `json:"workload"`
	Options  wireOptions `json:"options"`
	Config   core.Config `json:"config"`
}

// unitKey recomputes the unit's content address from its own fields.
func unitKey(u workUnit) string {
	return sweep.Key(u.Workload, u.Config, u.Options.toOptions())
}

// validateUnit checks a received unit: known workload, simulatable
// configuration, key integrity.
func validateUnit(u workUnit) error {
	if _, err := spec.ByName(u.Workload); err != nil {
		return err
	}
	if err := u.Config.Validate(); err != nil {
		return err
	}
	if got := unitKey(u); got != u.Key {
		return errKeyMismatch(u.Key, got)
	}
	return nil
}

type registerRequest struct {
	ID string `json:"id"`
	// InflightKeys are the unit keys the worker currently holds — active
	// leases still evaluating plus completion pushes buffered during a
	// coordinator outage. A restarted coordinator matches them against
	// its orphaned (journal-replayed) leases and re-attaches the work to
	// this worker instead of stealing it.
	InflightKeys []string `json:"inflight_keys,omitempty"`
}

type registerResponse struct {
	// HeartbeatMS is the interval the worker must beat at; LeaseTTLMS is
	// how long the coordinator waits past the last contact before
	// declaring the worker dead and stealing its leases.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
}

type heartbeatRequest struct {
	ID string `json:"id"`
	// Metrics piggybacks the worker's registry snapshot for federation.
	// Workers send it only when the registry changed since the last
	// successful beat (a crc32 fingerprint decides), so an idle fleet
	// heartbeats at pre-federation payload sizes.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

type leaseRequest struct {
	ID        string `json:"id"`
	MaxPoints int    `json:"max_points"`
}

type leaseResponse struct {
	LeaseID string     `json:"lease_id"`
	Units   []workUnit `json:"units"`
}

// resultWire is one completed evaluation travelling back. Exactly one
// of Point (a persisted twolevel-sweep/1 point) or Error is set.
type resultWire struct {
	Key   string          `json:"key"`
	Point json.RawMessage `json:"point,omitempty"`
	Error string          `json:"error,omitempty"`
}

type completeRequest struct {
	ID      string       `json:"id"`
	LeaseID string       `json:"lease_id"`
	Results []resultWire `json:"results"`
	// Spans are the worker-side spans of this lease's evaluations, each
	// subtree rooted at a span carrying a "key" attribute naming its
	// unit. EpochNS is the worker tracer's wall-clock epoch
	// (span.Tracer.EpochWallNS); the coordinator uses it to shift the
	// subtree onto its own timeline before grafting it under the owning
	// job's remote-evaluate span.
	Spans   []spanData `json:"spans,omitempty"`
	EpochNS int64      `json:"epoch_ns,omitempty"`
}

type completeResponse struct {
	// Accepted counts results delivered to the job service; Duplicates
	// counts pushes for points already completed elsewhere (idempotent
	// no-ops); Requeued counts undecodable results returned to the
	// queue.
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	Requeued   int `json:"requeued"`
}

// errorResponse is the JSON error body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// jobWire is the journaled form of a service.JobRequest: the workload
// list, mode, and job deadline, plus the enumeration and
// result-determining fields of sweep.Options — everything Submit reads
// (the runtime plumbing fields are owned by the manager on both the
// original and the rehydrated submission). Round-tripping a request
// through jobWire preserves its option fingerprint, so a rehydrated
// job's keys equal the original's and its stored points land as store
// hits.
type jobWire struct {
	Workloads []string `json:"workloads"`
	Mode      string   `json:"mode,omitempty"`
	TimeoutNS int64    `json:"timeout_ns,omitempty"`

	TechScale       float64 `json:"tech_scale,omitempty"`
	TechAddrBits    int     `json:"tech_addr_bits,omitempty"`
	OffChipNS       float64 `json:"offchip_ns,omitempty"`
	L2Assoc         int     `json:"l2_assoc,omitempty"`
	L2Policy        int     `json:"l2_policy,omitempty"`
	Policy          int     `json:"policy,omitempty"`
	DualPorted      bool    `json:"dual_ported,omitempty"`
	Refs            uint64  `json:"refs,omitempty"`
	L1Sizes         []int64 `json:"l1_sizes,omitempty"`
	L2Sizes         []int64 `json:"l2_sizes,omitempty"`
	SingleLevelOnly bool    `json:"single_level_only,omitempty"`
	TwoLevelOnly    bool    `json:"two_level_only,omitempty"`
	LineSize        int     `json:"line_size,omitempty"`
	CfgTimeoutNS    int64   `json:"cfg_timeout_ns,omitempty"`
	Retries         int     `json:"retries,omitempty"`
}

// jobToWire captures the journaled form of a job request.
func jobToWire(req service.JobRequest) jobWire {
	o := req.Options
	return jobWire{
		Workloads:       append([]string(nil), req.Workloads...),
		Mode:            req.Mode,
		TimeoutNS:       int64(req.Timeout),
		TechScale:       o.Tech.Scale,
		TechAddrBits:    o.Tech.AddrBits,
		OffChipNS:       o.OffChipNS,
		L2Assoc:         o.L2Assoc,
		L2Policy:        int(o.L2Policy),
		Policy:          int(o.Policy),
		DualPorted:      o.DualPorted,
		Refs:            o.Refs,
		L1Sizes:         append([]int64(nil), o.L1Sizes...),
		L2Sizes:         append([]int64(nil), o.L2Sizes...),
		SingleLevelOnly: o.SingleLevelOnly,
		TwoLevelOnly:    o.TwoLevelOnly,
		LineSize:        o.LineSize,
		CfgTimeoutNS:    int64(o.Timeout),
		Retries:         o.Retries,
	}
}

// toRequest rebuilds the job request for rehydration.
func (jw jobWire) toRequest() service.JobRequest {
	return service.JobRequest{
		Workloads: append([]string(nil), jw.Workloads...),
		Mode:      jw.Mode,
		Timeout:   time.Duration(jw.TimeoutNS),
		Options: sweep.Options{
			Tech:            timing.Tech{Scale: jw.TechScale, AddrBits: jw.TechAddrBits},
			OffChipNS:       jw.OffChipNS,
			L2Assoc:         jw.L2Assoc,
			L2Policy:        cache.ReplacementPolicy(jw.L2Policy),
			Policy:          core.Policy(jw.Policy),
			DualPorted:      jw.DualPorted,
			Refs:            jw.Refs,
			L1Sizes:         append([]int64(nil), jw.L1Sizes...),
			L2Sizes:         append([]int64(nil), jw.L2Sizes...),
			SingleLevelOnly: jw.SingleLevelOnly,
			TwoLevelOnly:    jw.TwoLevelOnly,
			LineSize:        jw.LineSize,
			Timeout:         time.Duration(jw.CfgTimeoutNS),
			Retries:         jw.Retries,
		},
	}
}

func errKeyMismatch(want, got string) error {
	return fmt.Errorf("cluster: unit key %q does not match recomputed key %q", want, got)
}
