package cluster

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/spec"
	"twolevel/internal/sweep"
)

// TestWireOptionsRoundTripPreservesKey is the exactness contract at the
// protocol layer: shipping options over the wire and rebuilding them on
// the far side must reproduce the same content address, or remote
// memoization would silently alias (or miss) local evaluations.
func TestWireOptionsRoundTripPreservesKey(t *testing.T) {
	wl, err := spec.ByName("gcc1")
	if err != nil {
		t.Fatal(err)
	}
	// NewEvaluator applies the option defaults exactly as the service
	// evaluation plane does; the wire carries the defaulted form.
	opt := sweep.NewEvaluator(wl, sweep.Options{
		Refs:    5000,
		Retries: 2,
	}).Options()

	cfg := testConfig(4<<10, 64<<10)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	round := optionsToWire(opt).toOptions()
	want := sweep.Key("gcc1", cfg, opt)
	got := sweep.Key("gcc1", cfg, round)
	if got != want {
		t.Fatalf("key changed across wire round trip:\n  local %s\n  wire  %s", want, got)
	}
}

// TestValidateUnit proves the worker-side integrity checks: a tampered
// key, an unknown workload, and a bad geometry are all refused before
// any cycles are spent evaluating.
func TestValidateUnit(t *testing.T) {
	wl, err := spec.ByName("gcc1")
	if err != nil {
		t.Fatal(err)
	}
	opt := sweep.NewEvaluator(wl, sweep.Options{Refs: 1000}).Options()
	cfg := testConfig(2<<10, 32<<10)
	u := workUnit{
		Key:      sweep.Key("gcc1", cfg, opt),
		Workload: "gcc1",
		Options:  optionsToWire(opt),
		Config:   cfg,
	}
	if err := validateUnit(u); err != nil {
		t.Fatalf("valid unit rejected: %v", err)
	}

	bad := u
	bad.Key = "sha256:0000"
	if err := validateUnit(bad); err == nil {
		t.Fatal("tampered key accepted")
	}

	bad = u
	bad.Workload = "no-such-workload"
	if err := validateUnit(bad); err == nil {
		t.Fatal("unknown workload accepted")
	}

	bad = u
	bad.Config.L1I.Size = 3000 // not a power of two
	if err := validateUnit(bad); err == nil {
		t.Fatal("invalid configuration accepted")
	}
}

// testConfig builds the paper's canonical shape: split direct-mapped
// 16-byte-line L1s over an optional mixed L2.
func testConfig(l1, l2 int64) core.Config {
	cfg := core.Config{
		L1I: cache.Config{Size: l1, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Size: l1, LineSize: 16, Assoc: 1},
	}
	if l2 > 0 {
		cfg.L2 = cache.Config{Size: l2, LineSize: 16, Assoc: 1}
	}
	return cfg
}
