package cluster

// Coordinator crash-tolerance, proven deterministically:
//
//   - TestKillCoordinatorMidSweepByteIdentical is the acceptance test:
//     two workers mid-sweep, the coordinator process is "kill -9"ed
//     (handler torn down, nothing closed cleanly), a new coordinator
//     boots from the same journal and store, holds /readyz at 503
//     "journal-replaying" until the workers reconcile their orphaned
//     leases, and finishes the sweep byte-identical to a single-node
//     run with zero lost and zero re-evaluated points.
//   - TestJournalTornTailRecovery tears the journal's final record
//     mid-write (chaos Short at the append site), and proves the reopen
//     truncates the tail and replays exactly the pre-tear state.
//   - TestJournalCorruptRecordSkipped flips a byte of one framed line
//     (silent media corruption) and proves the CRC catches it: the
//     record is dropped, replay continues.
//   - TestJournalCompactionRoundTrip proves checkpoint+truncate keeps
//     the live state and the job-id sequence floor.
//   - TestBackoffScheduleDeterminism pins the reconnect backoff: seeded
//     schedules are reproducible, growth and bounds hold, Reset
//     restarts the progression.

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"twolevel/internal/chaos"
	"twolevel/internal/obs"
	"twolevel/internal/service"
)

func testJobRequest() service.JobRequest {
	return service.JobRequest{Workloads: []string{"gcc1"}, Options: clusterOptions()}
}

// TestKillCoordinatorMidSweepByteIdentical is the issue's acceptance
// test: the coordinator — not a worker — dies mid-sweep and restarts
// from its journal.
func TestKillCoordinatorMidSweepByteIdentical(t *testing.T) {
	req := testJobRequest()

	// Single-node reference: today's standalone manager.
	solo := service.New(service.Config{Workers: 2})
	jSolo, err := solo.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jSolo)
	want := saveJobJSON(t, jSolo)
	solo.Close()

	storeDir := t.TempDir()
	journalDir := t.TempDir()

	// --- coordinator process #1: journaled manager + coordinator ------
	reg1 := obs.NewRegistry()
	journal1, err := OpenJournal(journalDir, JournalOptions{Metrics: reg1})
	if err != nil {
		t.Fatal(err)
	}
	disk1, err := service.OpenDiskStore(storeDir, service.DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// mgr1, journal1, and disk1 are deliberately never closed: closing
	// them would journal clean-shutdown records and fsync farewells that
	// a kill -9 never writes. They leak until the test process exits,
	// exactly like the OS reclaiming a dead process's descriptors.
	mgr1 := service.New(service.Config{
		ExternalExecution: true, Metrics: reg1, Store: disk1,
		OnJobAdmitted: func(id string, r service.JobRequest) { journal1.RecordAdmission(id, r) },
		OnJobTerminal: func(id string, s service.State) { journal1.RecordJobEnd(id, string(s)) },
	})
	coord1 := NewCoordinator(CoordinatorConfig{
		Manager:        mgr1,
		LeaseTTL:       500 * time.Millisecond,
		Heartbeat:      50 * time.Millisecond,
		MaxLeasePoints: 2,
		GrantWait:      50 * time.Millisecond,
		Metrics:        reg1,
		Journal:        journal1,
	})
	// A real listener (not httptest) so the restarted coordinator can
	// re-bind the same address the workers keep probing.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	hs1 := &http.Server{Handler: coord1.Handler()}
	go hs1.Serve(ln1) //nolint:errcheck // torn down by the kill below

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j1, err := mgr1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	jobID := j1.ID()

	// Two workers with fast seeded reconnect backoff; a pure-delay chaos
	// rule on every completion push holds leases in flight long enough
	// for the kill to land mid-push.
	regW := obs.NewRegistry()
	for i, id := range []string{"w-a", "w-b"} {
		injW := chaos.New(int64(i + 1))
		injW.Install(chaos.Rule{Site: ChaosSiteWorkerComplete, Delay: 400 * time.Millisecond})
		w := NewWorker(WorkerConfig{
			Coordinator:    "http://" + addr,
			ID:             id,
			Concurrency:    1,
			MaxLeasePoints: 2,
			PollInterval:   20 * time.Millisecond,
			Backoff:        Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Seed: int64(i + 1)},
			Metrics:        regW,
			Chaos:          injW,
		})
		startWorker(ctx, w)
	}

	// Kill once the sweep is genuinely mid-flight: at least one point
	// durably stored AND at least one lease still out.
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached mid-flight state: %+v", coord1.Stats())
		}
		if reg1.Counter(MetricPointsCompleted).Value() >= 1 && coord1.Stats().LeasesActive >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The "kill": stop the reaper, then tear down the HTTP surface.
	// Shutdown (not Close) lets in-flight handlers finish their journal
	// appends — the moral equivalent of the kill landing between
	// requests — so the old process writes nothing after the new one
	// opens the journal.
	coord1.Close()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := hs1.Shutdown(shutCtx); err != nil {
		hs1.Close()
	}
	shutCancel()

	// --- coordinator process #2: same journal, same store -------------
	reg2 := obs.NewRegistry()
	journal2, err := OpenJournal(journalDir, JournalOptions{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	rep := journal2.Replayed()
	if len(rep.Jobs) != 1 || len(rep.Leases) == 0 {
		t.Fatalf("journal replayed %d jobs, %d leases; want 1 job and in-flight leases", len(rep.Jobs), len(rep.Leases))
	}
	disk2, err := service.OpenDiskStore(storeDir, service.DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	mgr2 := service.New(service.Config{
		ExternalExecution: true, Metrics: reg2, Store: disk2,
		OnJobAdmitted: func(id string, r service.JobRequest) { journal2.RecordAdmission(id, r) },
		OnJobTerminal: func(id string, s service.State) { journal2.RecordJobEnd(id, string(s)) },
	})
	defer mgr2.Close()
	coord2 := NewCoordinator(CoordinatorConfig{
		Manager:        mgr2,
		LeaseTTL:       500 * time.Millisecond,
		Heartbeat:      50 * time.Millisecond,
		MaxLeasePoints: 2,
		GrantWait:      50 * time.Millisecond,
		OrphanGrace:    30 * time.Second, // reconciliation must come from the workers, not the reaper
		Metrics:        reg2,
		Journal:        journal2,
	})
	defer coord2.Close()

	if err := coord2.RecoveryErr(); err == nil {
		t.Fatal("restarted coordinator reports ready before orphan reconciliation")
	}
	if got := coord2.Stats().PointsOrphaned; got == 0 {
		t.Fatal("restart orphaned no units despite in-flight journaled leases")
	}

	// Satellite: the job API answers 503 "journal-replaying" until the
	// grace reconciliation completes.
	mgr2.AddReadyCheck("journal-replaying", coord2.RecoveryErr)
	mgr2.AddReadyCheck("journal-poisoned", journal2.Err)
	api := httptest.NewServer(service.NewHandler(mgr2))
	defer api.Close()
	if code, body := getBody(t, api.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "journal-replaying") {
		t.Fatalf("/readyz during replay = %d %q, want 503 journal-replaying", code, body)
	}

	// Re-bind the dead coordinator's address and serve the new one; the
	// workers' reconnect loops find it, re-register with their in-flight
	// keys, and flush their buffered pushes.
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 250 {
			t.Fatalf("re-listen on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hs2 := &http.Server{Handler: coord2.Handler()}
	go hs2.Serve(ln2) //nolint:errcheck // closed by defer
	defer hs2.Close()

	j2, ok := mgr2.Job(jobID)
	if !ok {
		t.Fatalf("job %s was not rehydrated from the journal", jobID)
	}
	waitJob(t, j2)
	if st := j2.Status(); st.State != service.StateDone {
		t.Fatalf("rehydrated job state = %s (errors: %v), want done", st.State, st.Errors)
	}

	// Byte identity against the single-node envelope.
	if got := saveJobJSON(t, j2); !bytes.Equal(got, want) {
		t.Fatalf("post-failover envelope differs from single-node envelope:\n--- failover\n%s\n--- solo\n%s", got, want)
	}

	const points = 9
	// Zero re-evaluation: across the entire kill-and-restart, the fleet
	// evaluated each of the 9 points exactly once.
	if n := regW.Counter(MetricWorkerPoints).Value(); n != points {
		t.Errorf("fleet evaluated %d points, want exactly %d (zero re-evaluation)", n, points)
	}
	// Zero loss: what the first process stored came back as store hits
	// on rehydration; the remainder arrived as post-restart completions.
	hits := reg2.Counter(service.MetricStoreHits).Value()
	completed := reg2.Counter(MetricPointsCompleted).Value()
	if hits == 0 {
		t.Error("rehydration produced no store hits: pre-kill work was lost or re-run")
	}
	if hits+completed != points {
		t.Errorf("store hits (%d) + completions (%d) = %d, want %d exactly", hits, completed, hits+completed, points)
	}
	if n := reg2.Counter(MetricCoordinatorRestarts).Value(); n != 1 {
		t.Errorf("cluster_coordinator_restarts_total = %d, want 1", n)
	}
	if n := reg2.Counter(MetricOrphanLeasesReconciled).Value(); n < 1 {
		t.Errorf("cluster_orphan_leases_reconciled_total = %d, want >= 1", n)
	}
	if err := coord2.RecoveryErr(); err != nil {
		t.Errorf("RecoveryErr after completion: %v", err)
	}
	if code, body := getBody(t, api.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after reconciliation = %d %q, want 200", code, body)
	}
	if fo := coord2.Status().Failover; fo == nil {
		t.Error("status document lacks the failover section despite a journal")
	} else if fo.Recovering || fo.OrphanUnits != 0 {
		t.Errorf("failover status still recovering after completion: %+v", fo)
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestJournalTornTailRecovery cuts an append off mid-write and proves
// reopening truncates the torn tail and replays the pre-tear state
// exactly.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(1)
	// The first three appends land clean; the fourth is torn (half the
	// line persists, then the write fails).
	inj.Install(chaos.Rule{Site: ChaosSiteJournalAppend, After: 3, Times: 1, Short: true})
	j, err := OpenJournal(dir, JournalOptions{Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	j.RecordAdmission("j1", testJobRequest())
	j.RecordGrant("l1", "w-a", []string{"k1", "k2"})
	j.RecordComplete("k1", true)
	j.RecordGrant("l2", "w-b", []string{"k3"}) // torn mid-write
	if err := j.Err(); err == nil {
		t.Fatal("torn append did not poison the journal")
	}
	// A poisoned journal refuses further appends rather than framing on
	// top of the partial line.
	j.RecordComplete("k2", true)
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep := j2.Replayed()
	if rep.TornRepaired != 1 {
		t.Fatalf("TornRepaired = %d, want 1", rep.TornRepaired)
	}
	if rep.Records != 3 {
		t.Fatalf("replayed %d records, want the 3 pre-tear ones", rep.Records)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j1" {
		t.Fatalf("replayed jobs = %+v, want [j1]", rep.Jobs)
	}
	if len(rep.Leases) != 1 || rep.Leases[0].ID != "l1" ||
		!reflect.DeepEqual(rep.Leases[0].Keys, []string{"k2"}) {
		t.Fatalf("replayed leases = %+v, want [l1 holding k2]", rep.Leases)
	}
	// The rehydratable request round-trips (fingerprint-identical).
	if got := rep.Jobs[0].Req; !reflect.DeepEqual(got, testJobRequest()) {
		t.Fatalf("replayed request = %+v, want %+v", got, testJobRequest())
	}
}

// TestJournalCorruptRecordSkipped flips one byte of a framed line and
// proves the CRC catches it: the record drops, replay continues.
func TestJournalCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(7)
	inj.Install(chaos.Rule{Site: ChaosSiteJournalAppend, After: 1, Times: 1, Corrupt: true})
	j, err := OpenJournal(dir, JournalOptions{Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	j.RecordAdmission("j1", testJobRequest())
	j.RecordGrant("l1", "w-a", []string{"k1"}) // silently corrupted
	j.RecordComplete("k9", true)               // lands clean after it
	if err := j.Err(); err != nil {
		t.Fatalf("silent corruption must not poison the journal, got: %v", err)
	}
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep := j2.Replayed()
	if rep.CorruptDropped != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", rep.CorruptDropped)
	}
	if rep.Records != 2 {
		t.Fatalf("replayed %d records, want 2 (the clean ones)", rep.Records)
	}
	if len(rep.Jobs) != 1 || len(rep.Leases) != 0 {
		t.Fatalf("replayed jobs=%d leases=%d, want the job alone (the corrupt grant is gone)",
			len(rep.Jobs), len(rep.Leases))
	}
}

// TestJournalCompactionRoundTrip proves checkpoint+truncate preserves
// the live state (and only it) plus the job-id sequence floor.
func TestJournalCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j.RecordAdmission("j1", testJobRequest())
	j.RecordAdmission("j2", testJobRequest())
	j.RecordGrant("l1", "w-a", []string{"k1", "k2"})
	j.RecordRenew("l1")
	j.RecordRenew("l1")
	j.RecordComplete("k1", true)
	j.RecordJobEnd("j2", "done")
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.Records != 2 {
		t.Fatalf("post-compaction records = %d, want 2 (job j1 + lease l1)", st.Records)
	}
	if st.LastCompactAgo < 0 {
		t.Fatal("LastCompactAgo still reports never-compacted")
	}
	// Appends keep working on the compacted file.
	j.RecordGrant("l2", "w-b", []string{"k3"})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep := j2.Replayed()
	if rep.Seq != 2 {
		t.Fatalf("sequence floor = %d, want 2 (j2's admission survives compaction in the header)", rep.Seq)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j1" {
		t.Fatalf("replayed jobs = %+v, want [j1]", rep.Jobs)
	}
	if len(rep.Leases) != 2 {
		t.Fatalf("replayed %d leases, want 2 (compacted l1 + appended l2)", len(rep.Leases))
	}
	if rep.Leases[0].ID != "l1" || !reflect.DeepEqual(rep.Leases[0].Keys, []string{"k2"}) {
		t.Fatalf("lease l1 = %+v, want keys [k2]", rep.Leases[0])
	}
	if rep.Leases[1].ID != "l2" || !reflect.DeepEqual(rep.Leases[1].Keys, []string{"k3"}) {
		t.Fatalf("lease l2 = %+v, want keys [k3]", rep.Leases[1])
	}
}

// TestBackoffScheduleDeterminism pins the reconnect schedule: seeded
// reproducibility, exponential growth, cap, jitter bounds, Reset.
func TestBackoffScheduleDeterminism(t *testing.T) {
	const n = 12
	draw := func(b Backoff) []time.Duration {
		s := NewBackoffSchedule(b)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}

	t.Run("same seed, same schedule", func(t *testing.T) {
		b := Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5, Seed: 42}
		if a, c := draw(b), draw(b); !reflect.DeepEqual(a, c) {
			t.Fatalf("two schedules from seed 42 diverged:\n%v\n%v", a, c)
		}
	})

	t.Run("different seeds differ", func(t *testing.T) {
		a := draw(Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5, Seed: 1})
		c := draw(Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5, Seed: 2})
		if reflect.DeepEqual(a, c) {
			t.Fatal("seeds 1 and 2 produced identical jitter")
		}
	})

	t.Run("bare exponential without jitter", func(t *testing.T) {
		got := draw(Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 1})
		want := []time.Duration{10, 20, 40, 80, 80, 80, 80, 80, 80, 80, 80, 80}
		for i := range want {
			want[i] *= time.Millisecond
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("growth = %v, want %v", got, want)
		}
	})

	t.Run("jitter bounds", func(t *testing.T) {
		b := Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5, Seed: 7}
		seq := draw(b)
		for i, d := range seq {
			if d > b.Max {
				t.Fatalf("delay %d = %v exceeds cap %v", i, d, b.Max)
			}
			if d < b.Base/2 {
				t.Fatalf("delay %d = %v below jitter floor %v", i, d, b.Base/2)
			}
		}
	})

	t.Run("reset restarts the progression", func(t *testing.T) {
		s := NewBackoffSchedule(Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 1})
		s.Next()
		s.Next()
		s.Reset()
		if got := s.Next(); got != 10*time.Millisecond {
			t.Fatalf("post-Reset delay = %v, want the base again", got)
		}
	})
}
