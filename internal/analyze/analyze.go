// Package analyze explains cache behaviour instead of merely counting
// it. Attached to a core.System as a shadow observer, it classifies
// every miss of every level with the classic 3C taxonomy —
//
//   - compulsory: the first demand reference to that line at that level
//   - capacity: a re-reference whose LRU stack distance exceeds the
//     level's size in lines, so even a fully-associative LRU cache of
//     the same capacity would have missed
//   - conflict: everything else — the line was recently enough used
//     that a fully-associative LRU cache of the same capacity would
//     have hit, so the miss is an artifact of limited associativity
//     (or, for an exclusive L2, of lines being promoted out)
//
// — and accumulates per-level reuse-distance histograms in log2
// buckets. Both derive from one exact LRU stack-distance computation
// per demand reference (a Fenwick tree over access timestamps, O(log n)
// per reference), because a fully-associative LRU cache of capacity C
// hits exactly the references with stack distance ≤ C.
//
// The analyzer is a pure shadow: it observes the demand stream through
// cache.AccessObserver and never touches primary simulator state, so
// attaching it cannot perturb results, statistics, or checkpoint
// output.
package analyze

import (
	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/obs"
)

// reuseBounds are the log2 histogram bounds for reuse distances in
// lines: 1, 2, 4, …, 2^23 (an 8M-line span; larger distances land in
// the overflow bucket).
func reuseBounds() []float64 { return obs.ExpBuckets(1, 2, 24) }

// Analyzer owns the per-level shadow state for one hierarchy. Build it
// with Attach; read results with Report. An Analyzer is not safe for
// concurrent use — it shares the single-threaded discipline of the
// simulator it shadows.
type Analyzer struct {
	cfg    core.Config
	reg    *obs.Registry
	levels []*level
}

// Attach builds an analyzer for sys and attaches it to every level. The
// registry receives the reuse-distance histograms (named
// "analyze_<level>_reuse_distance_lines"); pass nil to let the analyzer
// keep a private registry. Attach replaces any observers previously set
// on the system's caches.
func Attach(sys *core.System, reg *obs.Registry) *Analyzer {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Analyzer{cfg: sys.Config(), reg: reg}
	mk := func(name string, c *cache.Cache) *level {
		l := &level{
			name:     name,
			capLines: uint64(c.Config().Lines()),
			hist:     reg.Histogram("analyze_"+name+"_reuse_distance_lines", reuseBounds()),
		}
		l.dist.last = make(map[cache.LineAddr]int32)
		a.levels = append(a.levels, l)
		return l
	}
	l1i := mk("l1i", sys.L1I())
	l1d := mk("l1d", sys.L1D())
	if sys.L2() != nil {
		sys.ObserveLevels(l1i, l1d, mk("l2", sys.L2()))
	} else {
		sys.ObserveLevels(l1i, l1d, nil)
	}
	return a
}

// StackDist is the exported face of the Fenwick LRU stack-distance
// tracker, for consumers that need exact reuse distances outside a
// shadow-attached analyzer — internal/model's one-pass reuse-distance
// profiler collects per-stream histograms with it. The zero value is
// not usable; build with NewStackDist.
type StackDist struct{ d distTracker }

// NewStackDist returns an empty tracker.
func NewStackDist() *StackDist {
	s := &StackDist{}
	s.d.last = make(map[cache.LineAddr]int32)
	return s
}

// Access records one reference to line l and returns its 1-based LRU
// stack distance (1 = immediate re-reference; d ≤ C ⇔ a C-line
// fully-associative LRU cache hits), or cold=true for a first touch.
func (s *StackDist) Access(l cache.LineAddr) (dist uint64, cold bool) {
	dist, _, cold = s.d.access(l)
	return dist, cold
}

// AccessTimed is Access plus the reuse distance in time: the number of
// run-collapsed accesses since the line's previous reference (1 for an
// immediate repeat; consecutive same-line references collapse into one
// tracked access, so the unit is "distinct-line episodes", the events
// that can miss and evict). Probabilistic replacement models need time
// distances — eviction pressure under random replacement accumulates
// per (potentially missing) access, not per distinct line.
func (s *StackDist) AccessTimed(l cache.LineAddr) (dist, timeDist uint64, cold bool) {
	return s.d.access(l)
}

// Distinct reports the number of distinct lines seen so far (the
// cumulative cold count).
func (s *StackDist) Distinct() int { return len(s.d.last) }

// level is the shadow analysis for one cache level. It implements
// cache.AccessObserver.
type level struct {
	name     string
	capLines uint64
	dist     distTracker
	hist     *obs.Histogram

	accesses, hits, misses         uint64
	compulsory, capacity, conflict uint64
	coldRefs                       uint64 // first-touch references (no reuse distance)
}

// ObserveAccess folds one demand reference into the shadow state. Every
// miss lands in exactly one 3C class, so per level
// compulsory+capacity+conflict always equals the primary cache's miss
// count.
func (s *level) ObserveAccess(l cache.LineAddr, hit bool) {
	s.accesses++
	d, _, cold := s.dist.access(l)
	if cold {
		s.coldRefs++
	} else {
		s.hist.Observe(float64(d))
	}
	if hit {
		s.hits++
		return
	}
	s.misses++
	switch {
	case cold:
		s.compulsory++
	case d <= s.capLines:
		s.conflict++
	default:
		s.capacity++
	}
}

// distTracker computes exact LRU stack distances over a growing access
// stream: a Fenwick tree over access indices plus a line → latest-index
// map.
type distTracker struct {
	last map[cache.LineAddr]int32 // line -> 1-based index of its latest access
	fen  Fenwick
	// lastLine/haveLast shortcut consecutive same-line references:
	// repeats of the most recent line have distance 1 by definition and
	// change no other line's future distance (stack distance counts
	// *distinct* intervening lines), so they can skip the tree entirely.
	lastLine cache.LineAddr
	haveLast bool
}

// access records one reference to line l and returns its 1-based LRU
// stack distance (1 = immediate re-reference; d ≤ C ⇔ a C-line
// fully-associative LRU cache hits) together with its reuse distance
// in collapsed accesses, or cold=true for a first touch.
func (d *distTracker) access(l cache.LineAddr) (dist, timeDist uint64, cold bool) {
	if d.haveLast && l == d.lastLine {
		// Immediate re-reference: distance 1, and skipping the tree
		// update is exact — a repeat adds no distinct line, so every
		// other line's future distance is unchanged, and l's own next
		// distance counts distinct lines since *any* access of this run.
		return 1, 1, false
	}
	d.lastLine, d.haveLast = l, true
	prev, seen := d.last[l]
	if seen {
		dist = uint64(d.fen.CountSince(prev)) + 1
		timeDist = uint64(d.fen.N() - prev + 1)
	} else {
		cold = true
	}
	d.fen.Append()
	if seen {
		d.fen.Clear(prev)
	}
	d.last[l] = d.fen.N()
	return dist, timeDist, cold
}

// Fenwick is the LRU-stack tree at the core of every exact
// stack-distance computation here: a binary indexed tree over access
// indices tracking, for each distinct line, its most recent access, so
// the number of distinct lines touched after access i is one range sum
// — O(log n) per reference instead of the O(n) of a move-to-front
// list. The zero value is a growing tree storing a 1 at each
// most-recent access. NewFenwick with a capacity preallocates and
// inverts the representation: the tree stores a 1 at each CLEARED
// position instead, so Append is a bare counter increment (a fresh
// position is implicitly set) and each access costs one traversal for
// CountSince plus one for Clear. Consumers that know their stream
// length up front (the reuse-distance profiler in internal/model) get
// roughly half the per-access cost of the growing form.
type Fenwick struct {
	bit   []int32
	n     int32
	ones  int32 // growing mode: set positions == full-range sum
	holes int32 // fixed mode: cleared positions recorded in the tree
	limit int32 // preallocated capacity; 0 = grow on demand
}

// NewFenwick returns a tree preallocated for capacity accesses
// (capacity ≤ 0 yields a growing tree).
func NewFenwick(capacity int) *Fenwick {
	f := &Fenwick{}
	if capacity > 0 {
		f.bit = make([]int32, capacity+1)
		f.limit = int32(capacity)
	}
	return f
}

// N reports the number of accesses recorded (the 1-based index of the
// latest).
func (f *Fenwick) N() int32 { return f.n }

// Append records the next access as the most recent occurrence of its
// line.
func (f *Fenwick) Append() {
	f.n++
	f.ones++
	i := f.n
	if f.limit > 0 {
		// Holes representation: the new position is set by definition
		// of "not yet cleared" — no tree update at all.
		if i > f.limit {
			f.growFixed()
		}
		return
	}
	if int(i) >= len(f.bit) {
		nb := make([]int32, max(int(i)+1, 2*len(f.bit)))
		copy(nb, f.bit)
		f.bit = nb
	}
	// Derive the new node's range sum from the current tree, which
	// keeps the growing tree exact without touching other nodes.
	f.bit[i] = 1 + f.query(i-1) - f.query(i-i&-i)
}

// Clear marks access i as no longer the most recent occurrence of its
// line (call it with the line's previous index after Append).
func (f *Fenwick) Clear(i int32) {
	f.ones--
	if f.limit > 0 {
		f.holes++
		f.add(i, 1)
		return
	}
	f.add(i, -1)
}

// CountSince reports the number of distinct lines whose most recent
// access came strictly after access i. Only the prefix at i costs a
// traversal: the full-range total is the tracked ones (or holes)
// count.
func (f *Fenwick) CountSince(i int32) int32 {
	if f.limit > 0 {
		// Set positions in (i, n] = all positions there minus the holes
		// there; holes beyond i = total holes minus holes ≤ i.
		return (f.n - i) - (f.holes - f.query(i))
	}
	return f.ones - f.query(i)
}

// query sums tree positions 1..i.
func (f *Fenwick) query(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += f.bit[i]
	}
	return s
}

// add applies delta at position i.
func (f *Fenwick) add(i, delta int32) {
	lim := f.limit
	if lim == 0 {
		lim = f.n
	}
	for ; i <= lim; i += i & -i {
		f.bit[i] += delta
	}
}

// growFixed doubles a preallocated tree that overflowed its capacity,
// rebuilding node range sums for the new geometry.
func (f *Fenwick) growFixed() {
	old := *f
	f.limit = 2 * f.limit
	f.bit = make([]int32, f.limit+1)
	for i := int32(1); i < old.n; i++ {
		if v := old.query(i) - old.query(i-1); v != 0 {
			f.add(i, v)
		}
	}
}
