// Package analyze explains cache behaviour instead of merely counting
// it. Attached to a core.System as a shadow observer, it classifies
// every miss of every level with the classic 3C taxonomy —
//
//   - compulsory: the first demand reference to that line at that level
//   - capacity: a re-reference whose LRU stack distance exceeds the
//     level's size in lines, so even a fully-associative LRU cache of
//     the same capacity would have missed
//   - conflict: everything else — the line was recently enough used
//     that a fully-associative LRU cache of the same capacity would
//     have hit, so the miss is an artifact of limited associativity
//     (or, for an exclusive L2, of lines being promoted out)
//
// — and accumulates per-level reuse-distance histograms in log2
// buckets. Both derive from one exact LRU stack-distance computation
// per demand reference (a Fenwick tree over access timestamps, O(log n)
// per reference), because a fully-associative LRU cache of capacity C
// hits exactly the references with stack distance ≤ C.
//
// The analyzer is a pure shadow: it observes the demand stream through
// cache.AccessObserver and never touches primary simulator state, so
// attaching it cannot perturb results, statistics, or checkpoint
// output.
package analyze

import (
	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/obs"
)

// reuseBounds are the log2 histogram bounds for reuse distances in
// lines: 1, 2, 4, …, 2^23 (an 8M-line span; larger distances land in
// the overflow bucket).
func reuseBounds() []float64 { return obs.ExpBuckets(1, 2, 24) }

// Analyzer owns the per-level shadow state for one hierarchy. Build it
// with Attach; read results with Report. An Analyzer is not safe for
// concurrent use — it shares the single-threaded discipline of the
// simulator it shadows.
type Analyzer struct {
	cfg    core.Config
	reg    *obs.Registry
	levels []*level
}

// Attach builds an analyzer for sys and attaches it to every level. The
// registry receives the reuse-distance histograms (named
// "analyze_<level>_reuse_distance_lines"); pass nil to let the analyzer
// keep a private registry. Attach replaces any observers previously set
// on the system's caches.
func Attach(sys *core.System, reg *obs.Registry) *Analyzer {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Analyzer{cfg: sys.Config(), reg: reg}
	mk := func(name string, c *cache.Cache) *level {
		l := &level{
			name:     name,
			capLines: uint64(c.Config().Lines()),
			hist:     reg.Histogram("analyze_"+name+"_reuse_distance_lines", reuseBounds()),
		}
		l.dist.last = make(map[cache.LineAddr]int32)
		a.levels = append(a.levels, l)
		return l
	}
	l1i := mk("l1i", sys.L1I())
	l1d := mk("l1d", sys.L1D())
	if sys.L2() != nil {
		sys.ObserveLevels(l1i, l1d, mk("l2", sys.L2()))
	} else {
		sys.ObserveLevels(l1i, l1d, nil)
	}
	return a
}

// level is the shadow analysis for one cache level. It implements
// cache.AccessObserver.
type level struct {
	name     string
	capLines uint64
	dist     distTracker
	hist     *obs.Histogram

	accesses, hits, misses         uint64
	compulsory, capacity, conflict uint64
	coldRefs                       uint64 // first-touch references (no reuse distance)
}

// ObserveAccess folds one demand reference into the shadow state. Every
// miss lands in exactly one 3C class, so per level
// compulsory+capacity+conflict always equals the primary cache's miss
// count.
func (s *level) ObserveAccess(l cache.LineAddr, hit bool) {
	s.accesses++
	d, cold := s.dist.access(l)
	if cold {
		s.coldRefs++
	} else {
		s.hist.Observe(float64(d))
	}
	if hit {
		s.hits++
		return
	}
	s.misses++
	switch {
	case cold:
		s.compulsory++
	case d <= s.capLines:
		s.conflict++
	default:
		s.capacity++
	}
}

// distTracker computes exact LRU stack distances over a growing access
// stream. It keeps a Fenwick (binary indexed) tree over access indices
// with a 1 at the most recent access of each distinct line; the stack
// distance of a re-reference is then one plus the number of 1s after
// the line's previous access — O(log n) per reference instead of the
// O(n) of a move-to-front list.
type distTracker struct {
	last map[cache.LineAddr]int32 // line -> 1-based index of its latest access
	bit  []int32                  // Fenwick tree, 1-based
	n    int32                    // accesses so far
}

// access records one reference to line l and returns its 1-based LRU
// stack distance (1 = immediate re-reference; d ≤ C ⇔ a C-line
// fully-associative LRU cache hits), or cold=true for a first touch.
func (d *distTracker) access(l cache.LineAddr) (dist uint64, cold bool) {
	prev, seen := d.last[l]
	if seen {
		// Distinct lines touched strictly after prev, plus l itself.
		dist = uint64(d.query(d.n)-d.query(prev)) + 1
	} else {
		cold = true
	}
	d.push(1)
	if seen {
		d.add(prev, -1)
	}
	d.last[l] = d.n
	return dist, cold
}

// query sums tree positions 1..i.
func (d *distTracker) query(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += d.bit[i]
	}
	return s
}

// add applies delta at position i ≤ n.
func (d *distTracker) add(i, delta int32) {
	for ; i <= d.n; i += i & -i {
		d.bit[i] += delta
	}
}

// push appends position n+1 holding val. The new node's range sum is
// derived from the current tree, which keeps the growing tree exact.
func (d *distTracker) push(val int32) {
	d.n++
	i := d.n
	if int(i) >= len(d.bit) {
		nb := make([]int32, max(int(i)+1, 2*len(d.bit)))
		copy(nb, d.bit)
		d.bit = nb
	}
	d.bit[i] = val + d.query(i-1) - d.query(i-i&-i)
}
