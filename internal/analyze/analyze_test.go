package analyze

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/spec"
	"twolevel/internal/trace"
)

// naiveTracker is the O(n·footprint) move-to-front reference
// implementation distTracker must agree with exactly.
type naiveTracker struct {
	stack []cache.LineAddr // most recent first
}

func (n *naiveTracker) access(l cache.LineAddr) (dist uint64, cold bool) {
	for i, x := range n.stack {
		if x == l {
			copy(n.stack[1:], n.stack[:i])
			n.stack[0] = l
			return uint64(i) + 1, false
		}
	}
	n.stack = append([]cache.LineAddr{l}, n.stack...)
	return 0, true
}

func TestDistTrackerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := &distTracker{last: map[cache.LineAddr]int32{}}
	n := &naiveTracker{}
	for i := 0; i < 20000; i++ {
		// Skewed alphabet: hot lines get short distances, cold tail
		// exercises large distances and first touches.
		var l cache.LineAddr
		if rng.Intn(4) == 0 {
			l = cache.LineAddr(rng.Intn(2000))
		} else {
			l = cache.LineAddr(rng.Intn(64))
		}
		gd, _, gc := d.access(l)
		wd, wc := n.access(l)
		if gd != wd || gc != wc {
			t.Fatalf("ref %d line %d: distTracker = (%d, %v), naive = (%d, %v)", i, l, gd, gc, wd, wc)
		}
	}
}

func TestDistTrackerKnownSequence(t *testing.T) {
	d := &distTracker{last: map[cache.LineAddr]int32{}}
	steps := []struct {
		line cache.LineAddr
		dist uint64
		time uint64
		cold bool
	}{
		{10, 0, 0, true},  // A
		{10, 1, 1, false}, // A again: immediate reuse (collapsed)
		{20, 0, 0, true},  // B
		{30, 0, 0, true},  // C
		{10, 3, 3, false}, // A after B, C (run-collapsed: B, C, A itself)
		{20, 3, 3, false}, // B after C, A
	}
	for i, s := range steps {
		dist, tdist, cold := d.access(s.line)
		if dist != s.dist || cold != s.cold {
			t.Fatalf("step %d (line %d): got (%d, %v), want (%d, %v)", i, s.line, dist, cold, s.dist, s.cold)
		}
		if !cold && tdist != s.time {
			t.Fatalf("step %d (line %d): time distance %d, want %d", i, s.line, tdist, s.time)
		}
	}
}

// testConfigs spans the hierarchy shapes whose demand streams differ:
// single level, conventional, exclusive (with its Lookup/Insert split
// and swaps), inclusive (back-invalidations), and write-through L1.
func testConfigs() map[string]core.Config {
	l1 := func(kb int64) cache.Config {
		return cache.Config{Size: l1size(kb), LineSize: 16, Assoc: 1}
	}
	l2 := func(kb int64, assoc int) cache.Config {
		return cache.Config{Size: kb << 10, LineSize: 16, Assoc: assoc, Policy: cache.Random}
	}
	return map[string]core.Config{
		"single":       {L1I: l1(4), L1D: l1(4)},
		"conventional": {L1I: l1(2), L1D: l1(2), L2: l2(32, 1), Policy: core.Conventional},
		"exclusive":    {L1I: l1(2), L1D: l1(2), L2: l2(32, 4), Policy: core.Exclusive},
		"inclusive":    {L1I: l1(2), L1D: l1(2), L2: l2(32, 4), Policy: core.Inclusive},
		"writethrough": {L1I: l1(2), L1D: l1(2), L2: l2(32, 2), Policy: core.Conventional, Writes: core.WriteThroughNoAllocate},
	}
}

func l1size(kb int64) int64 { return kb << 10 }

// TestReconciliation3C is the acceptance-criterion test: for every
// workload/config pair, each level's 3C classes sum exactly to the
// primary simulator's miss count, and the shadow's access/hit counts
// match the primary's too.
func TestReconciliation3C(t *testing.T) {
	for _, wname := range []string{"gcc1", "tomcatv"} {
		w, err := spec.ByName(wname)
		if err != nil {
			t.Fatalf("workload %s: %v", wname, err)
		}
		refs := trace.Collect(w.Stream(30000), 0)
		for cname, cfg := range testConfigs() {
			sys, err := core.TryNewSystem(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", wname, cname, err)
			}
			a := Attach(sys, nil)
			sys.Run(trace.NewSliceStream(refs))

			caches := map[string]*cache.Cache{"l1i": sys.L1I(), "l1d": sys.L1D(), "l2": sys.L2()}
			seen := 0
			for _, lv := range a.levels {
				c := caches[lv.name]
				if c == nil {
					t.Fatalf("%s/%s: analyzer has level %q the system lacks", wname, cname, lv.name)
				}
				seen++
				st := c.Stats()
				if lv.accesses != st.Accesses || lv.hits != st.Hits || lv.misses != st.Misses {
					t.Errorf("%s/%s %s: shadow saw %d/%d/%d acc/hit/miss, primary %d/%d/%d",
						wname, cname, lv.name, lv.accesses, lv.hits, lv.misses,
						st.Accesses, st.Hits, st.Misses)
				}
				if sum := lv.compulsory + lv.capacity + lv.conflict; sum != st.Misses {
					t.Errorf("%s/%s %s: 3C sum %d != primary misses %d (c=%d cap=%d conf=%d)",
						wname, cname, lv.name, sum, st.Misses, lv.compulsory, lv.capacity, lv.conflict)
				}
				if lv.hist.Count() != lv.accesses-lv.coldRefs {
					t.Errorf("%s/%s %s: histogram count %d != warm refs %d",
						wname, cname, lv.name, lv.hist.Count(), lv.accesses-lv.coldRefs)
				}
			}
			want := 2
			if cfg.TwoLevel() {
				want = 3
			}
			if seen != want {
				t.Errorf("%s/%s: analyzer tracks %d levels, want %d", wname, cname, seen, want)
			}
		}
	}
}

// TestConflictZeroOnFullyAssociativeLRU pins the 3C definition to its
// ground truth: when the primary cache IS the fully-associative LRU
// shadow, no miss can be a conflict miss.
func TestConflictZeroOnFullyAssociativeLRU(t *testing.T) {
	cfg := core.Config{
		L1I: cache.Config{Size: 512, LineSize: 16, Assoc: 32, Policy: cache.LRU},
		L1D: cache.Config{Size: 512, LineSize: 16, Assoc: 32, Policy: cache.LRU},
	}
	sys := core.NewSystem(cfg)
	a := Attach(sys, nil)
	rng := rand.New(rand.NewSource(7))
	var refs []trace.Ref
	for i := 0; i < 50000; i++ {
		kind := trace.Instr
		if rng.Intn(2) == 0 {
			kind = trace.Data
		}
		refs = append(refs, trace.Ref{Kind: kind, Addr: uint64(rng.Intn(4096)) * 16})
	}
	sys.Run(trace.NewSliceStream(refs))
	for _, lv := range a.levels {
		if lv.conflict != 0 {
			t.Errorf("%s: %d conflict misses on a fully-associative LRU cache", lv.name, lv.conflict)
		}
		if lv.misses == 0 {
			t.Errorf("%s: test exercised no misses", lv.name)
		}
	}
}

// TestShadowDoesNotPerturbPrimary runs the same workload through two
// identical systems, one shadowed, and demands bit-identical primary
// results — the contract that keeps checkpoint/resume output unchanged
// when -explain is on.
func TestShadowDoesNotPerturbPrimary(t *testing.T) {
	w, err := spec.ByName("gcc1")
	if err != nil {
		t.Fatal(err)
	}
	refs := trace.Collect(w.Stream(30000), 0)
	for cname, cfg := range testConfigs() {
		plain := core.NewSystem(cfg)
		shadowed := core.NewSystem(cfg)
		Attach(shadowed, nil)
		ps := plain.Run(trace.NewSliceStream(refs))
		ss := shadowed.Run(trace.NewSliceStream(refs))
		if !reflect.DeepEqual(ps, ss) {
			t.Errorf("%s: shadow perturbed stats:\nplain    %+v\nshadowed %+v", cname, ps, ss)
		}
	}
}

func TestReportDocument(t *testing.T) {
	w, err := spec.ByName("gcc1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs()["exclusive"]
	sys := core.NewSystem(cfg)
	a := Attach(sys, nil)
	sys.Run(trace.NewSliceStream(trace.Collect(w.Stream(20000), 0)))

	r := a.Report("gcc1", 20000)
	if r.Format != ReportFormat {
		t.Errorf("Format = %q, want %q", r.Format, ReportFormat)
	}
	if r.Workload != "gcc1" || r.Policy != "exclusive" || r.Refs != 20000 {
		t.Errorf("provenance fields wrong: %+v", r)
	}
	if len(r.Levels) != 3 {
		t.Fatalf("report has %d levels, want 3", len(r.Levels))
	}
	for _, l := range r.Levels {
		if l.Compulsory+l.Capacity+l.Conflict != l.Misses {
			t.Errorf("%s: 3C sum != misses in report", l.Level)
		}
		if l.ConflictShare < 0 || l.ConflictShare > 1 {
			t.Errorf("%s: conflict share %v out of range", l.Level, l.ConflictShare)
		}
		if got := l.ReuseDistance.Count; got != l.Accesses-l.ColdRefs {
			t.Errorf("%s: reuse histogram count %d != warm refs %d", l.Level, got, l.Accesses-l.ColdRefs)
		}
		// The explicit-bound bucket form must be present for plotting.
		if len(l.ReuseDistance.Buckets) != len(l.ReuseDistance.Counts) {
			t.Errorf("%s: snapshot Buckets len %d != Counts len %d",
				l.Level, len(l.ReuseDistance.Buckets), len(l.ReuseDistance.Counts))
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON round-trip: %v", err)
	}
	if back.Format != ReportFormat || len(back.Levels) != 3 {
		t.Errorf("round-tripped report mangled: %+v", back)
	}
	var text bytes.Buffer
	if err := r.Write(&text); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Contains(text.Bytes(), []byte("conflict")) {
		t.Errorf("text report lacks header: %q", text.String())
	}
}

// TestFenwickFixedMatchesGrowing drives the two Fenwick representations
// — the growing zero-value tree (bits = most-recent accesses) and the
// preallocated fixed tree (inverted "holes" form, used by the model
// package's profile pass) — through an identical Append/Clear stream
// and requires identical answers from every CountSince probe. Starting
// the fixed tree at a tiny capacity forces growFixed's rebuild path
// several times over.
func TestFenwickFixedMatchesGrowing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grow := &Fenwick{}
	fixed := NewFenwick(16) // ~10 doublings over the run
	last := map[cache.LineAddr]int32{}
	for i := 0; i < 30000; i++ {
		var l cache.LineAddr
		if rng.Intn(4) == 0 {
			l = cache.LineAddr(rng.Intn(4000))
		} else {
			l = cache.LineAddr(rng.Intn(128))
		}
		prev := last[l]
		grow.Append()
		fixed.Append()
		if grow.N() != fixed.N() {
			t.Fatalf("ref %d: N diverged: growing %d, fixed %d", i, grow.N(), fixed.N())
		}
		if prev != 0 {
			if g, f := grow.CountSince(prev), fixed.CountSince(prev); g != f {
				t.Fatalf("ref %d: CountSince(%d) diverged: growing %d, fixed %d", i, prev, g, f)
			}
			grow.Clear(prev)
			fixed.Clear(prev)
		}
		last[l] = grow.N()
		// Occasional probe at a random historical index, live or cleared.
		if i%17 == 0 && i > 0 {
			p := int32(rng.Intn(i) + 1)
			if g, f := grow.CountSince(p), fixed.CountSince(p); g != f {
				t.Fatalf("ref %d: probe CountSince(%d) diverged: growing %d, fixed %d", i, p, g, f)
			}
		}
	}
}
