package analyze

// Report rendering: the "twolevel-explain/1" JSON document and the
// aligned text form printed by cmd/cachesim -explain. The format string
// is versioned like twolevel-traceinfo's: consumers reject documents
// whose major version they do not know.

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"twolevel/internal/obs"
)

// ReportFormat identifies the explain document schema.
const ReportFormat = "twolevel-explain/1"

// LevelReport is the per-level half of a Report.
type LevelReport struct {
	Level         string `json:"level"`
	CapacityLines uint64 `json:"capacity_lines"`
	Accesses      uint64 `json:"accesses"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`

	// 3C classification; the three classes always sum to Misses.
	Compulsory uint64 `json:"compulsory_misses"`
	Capacity   uint64 `json:"capacity_misses"`
	Conflict   uint64 `json:"conflict_misses"`

	// ConflictShare is Conflict/Misses (0 with no misses) — the number
	// cmd/explain tracks across L2 organizations.
	ConflictShare float64 `json:"conflict_share"`

	// ColdRefs counts first-touch references (they have no reuse
	// distance and are excluded from the histogram).
	ColdRefs uint64 `json:"cold_refs"`

	// ReuseDistance is the log2-bucketed LRU stack-distance histogram
	// of re-references, in lines.
	ReuseDistance obs.HistogramSnapshot `json:"reuse_distance_lines"`
}

// Report is the full explain document for one simulated run.
type Report struct {
	Format   string        `json:"format"`
	Workload string        `json:"workload,omitempty"`
	Config   string        `json:"config"`
	Policy   string        `json:"policy"`
	Refs     uint64        `json:"refs"`
	Levels   []LevelReport `json:"levels"`
}

// Report freezes the analyzer's state into a document. workload and
// refs annotate provenance; the analyzer does not know them itself.
func (a *Analyzer) Report(workload string, refs uint64) Report {
	r := Report{
		Format:   ReportFormat,
		Workload: workload,
		Config:   a.cfg.String(),
		Policy:   a.cfg.Policy.String(),
		Refs:     refs,
	}
	hists := a.reg.Snapshot().Histograms
	for _, s := range a.levels {
		lr := LevelReport{
			Level:         s.name,
			CapacityLines: s.capLines,
			Accesses:      s.accesses,
			Hits:          s.hits,
			Misses:        s.misses,
			Compulsory:    s.compulsory,
			Capacity:      s.capacity,
			Conflict:      s.conflict,
			ColdRefs:      s.coldRefs,
			ReuseDistance: hists["analyze_"+s.name+"_reuse_distance_lines"],
		}
		if s.misses > 0 {
			lr.ConflictShare = float64(s.conflict) / float64(s.misses)
		}
		r.Levels = append(r.Levels, lr)
	}
	return r
}

// WriteJSON writes the document as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("analyze: encoding report: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Write renders the document as an aligned text table: one row per
// level with the 3C split and reuse-distance quantiles.
func (r Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "3C miss classification (%s, %s policy, shadow FA-LRU per level)\n", r.Config, r.Policy)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "level\tcap(lines)\taccesses\tmisses\tmiss%\tcompulsory\tcapacity\tconflict\tconflict%\treuse p50\treuse p90")
	for _, l := range r.Levels {
		missPct := 0.0
		if l.Accesses > 0 {
			missPct = 100 * float64(l.Misses) / float64(l.Accesses)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%d\t%d\t%d\t%.1f\t%.0f\t%.0f\n",
			l.Level, l.CapacityLines, l.Accesses, l.Misses, missPct,
			l.Compulsory, l.Capacity, l.Conflict, 100*l.ConflictShare,
			l.ReuseDistance.Quantile(0.5), l.ReuseDistance.Quantile(0.9))
	}
	return tw.Flush()
}
