package trace

import "math"

// mtfStack is a move-to-front list of line addresses used to realize an
// LRU stack-distance reuse model: referencing depth d reproduces an LRU
// stack distance of exactly d, so a fully-associative LRU cache of
// capacity C lines misses exactly the references drawn from depth > C
// (plus compulsory references).
//
// The representation is an order-statistics list rather than a dense
// slice: lines live in slots of a fixed arena, the front of the stack
// occupies the lowest occupied slot, and a Fenwick tree over slot
// occupancy answers "which slot holds depth d" in O(log n). A
// move-to-front (or a push of a new line) claims the next slot below
// the current front, so both cost O(log n) instead of the O(depth)
// memmove of a dense slice — the difference between microseconds and
// milliseconds per million references for footprints of 10^4..10^5
// lines. When the arena's headroom below the front is exhausted the
// stack compacts into a fresh arena (amortized O(1) per operation).
type mtfStack struct {
	lines []uint64 // 1-based: slot -> line (stale once a slot is vacated)
	bit   []int32  // Fenwick over slot occupancy, 1-based
	occ   int      // occupied slots == stack depth
	front int      // lowest occupied slot; 0 = empty
	hibit int      // largest power of two ≤ len(bit)-1, for select descent
}

// arena sizes the slot arena for a stack of n lines. Headroom trades
// compaction frequency against tree size: 2n keeps the Fenwick within
// a few hundred KB for typical footprints (so select/update paths stay
// cache-resident) while compactions — O(n log n) each, every 2n
// move-to-fronts — amortize to a couple of tree walks per reference.
func arenaCap(n int) int {
	h := 2 * n
	if h < 1<<16 {
		h = 1 << 16
	}
	return n + h
}

func (s *mtfStack) initArena(capacity int) {
	s.lines = make([]uint64, capacity+1)
	s.bit = make([]int32, capacity+1)
	s.hibit = 1
	for s.hibit*2 <= capacity {
		s.hibit *= 2
	}
	s.occ = 0
	s.front = capacity + 1 // next claim takes slot capacity
}

// add toggles slot occupancy in the Fenwick tree.
func (s *mtfStack) add(i int, delta int32) {
	for ; i < len(s.bit); i += i & -i {
		s.bit[i] += delta
	}
}

// selectSlot returns the d-th occupied slot in increasing order (depth
// d counts from the front, which is the lowest occupied slot).
func (s *mtfStack) selectSlot(d int) int {
	pos := 0
	rem := int32(d)
	for k := s.hibit; k > 0; k >>= 1 {
		if next := pos + k; next < len(s.bit) && s.bit[next] < rem {
			pos = next
			rem -= s.bit[next]
		}
	}
	return pos + 1
}

// claimFront returns a fresh slot strictly below the current front,
// compacting into a new arena when the headroom is gone.
func (s *mtfStack) claimFront() int {
	if s.front <= 1 {
		s.compact()
	}
	s.front--
	return s.front
}

// compact rebuilds the arena with the occupied slots packed at the top
// in depth order, restoring full headroom below the front.
func (s *mtfStack) compact() {
	old := *s
	s.initArena(arenaCap(old.occ))
	base := len(s.lines) - 1 - old.occ // slots base+1..base+occ
	for d := 1; d <= old.occ; d++ {
		s.lines[base+d] = old.lines[old.selectSlot(d)]
		s.add(base+d, 1)
	}
	s.occ = old.occ
	s.front = base + 1
	if s.occ == 0 {
		s.front = len(s.lines)
	}
}

// push adds a brand-new line at the front (a compulsory reference).
func (s *mtfStack) push(line uint64) {
	if s.lines == nil {
		s.initArena(arenaCap(1))
	}
	f := s.claimFront()
	s.lines[f] = line
	s.add(f, 1)
	s.occ++
}

// prewarm fills the stack with n lines produced by gen(i), most recent
// first, so the reuse model starts in steady state rather than growing a
// footprint from nothing (the paper's traces are tens of millions to
// billions of references of warmed-up execution).
func (s *mtfStack) prewarm(n int, gen func(int) uint64) {
	s.initArena(arenaCap(n))
	base := len(s.lines) - 1 - n
	for i := 0; i < n; i++ {
		// Depth i+1 (slot base+1+i) holds gen(n-1-i): most recent first.
		s.lines[base+1+i] = gen(n - 1 - i)
		s.add(base+1+i, 1)
	}
	s.occ = n
	s.front = base + 1
	if n == 0 {
		s.front = len(s.lines)
	}
}

// refDepth references the line at 1-based depth d, moving it to the
// front, and returns its address. d must be in [1, len].
func (s *mtfStack) refDepth(d int) uint64 {
	if d == 1 {
		return s.lines[s.front] // already at the front: nothing moves
	}
	if s.front <= 1 {
		// Compact before touching the tree: compaction walks it by rank
		// and must see every line still in place.
		s.compact()
	}
	slot := s.selectSlot(d)
	line := s.lines[slot]
	s.add(slot, -1)
	f := s.claimFront()
	s.lines[f] = line
	s.add(f, 1)
	return line
}

// depth returns the current stack depth.
func (s *mtfStack) depth() int { return s.occ }

// zipfSampler draws 1-based stack depths from a truncated Zipf
// distribution P(d) ∝ 1/d^theta over [1, n] by inverse-CDF lookup.
// theta controls how quickly miss rate falls with cache capacity: larger
// theta concentrates reuse near the top of the stack (miss rate falls
// fast and then flattens), smaller theta spreads reuse across the whole
// footprint (miss rate falls slowly — the tomcatv shape).
type zipfSampler struct {
	cdf []float64 // cdf[i] = P(depth <= i+1)
	// quant[b] pre-answers sample(b/len) so a draw only binary-searches
	// the narrow band [quant[b], quant[b+1]] its quantile pins down —
	// one or two probes in practice instead of log2(n).
	quant []int32
}

// quantBuckets sizes the quantile index; a power of two so the bucket
// of u is one multiply and truncation.
const quantBuckets = 4096

// newZipfSampler builds a sampler over depths [1, n].
func newZipfSampler(n int, theta float64) *zipfSampler {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for d := 1; d <= n; d++ {
		sum += math.Pow(float64(d), -theta)
		cdf[d-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	z := &zipfSampler{cdf: cdf, quant: make([]int32, quantBuckets+1)}
	for b, i := 0, 0; b <= quantBuckets; b++ {
		u := float64(b) / quantBuckets
		for i < n-1 && cdf[i] < u {
			i++
		}
		z.quant[b] = int32(i)
	}
	return z
}

// n returns the sampler's maximum depth.
func (z *zipfSampler) n() int { return len(z.cdf) }

// sample maps a uniform u in [0,1) to a depth in [1, n]: the lowest i
// with cdf[i] ≥ u, found within the bracket the quantile index pins.
func (z *zipfSampler) sample(u float64) int {
	b := int(u * quantBuckets)
	lo, hi := int(z.quant[b]), int(z.quant[b+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
