package trace

import "math"

// mtfStack is a move-to-front list of line addresses used to realize an
// LRU stack-distance reuse model: referencing depth d reproduces an LRU
// stack distance of exactly d, so a fully-associative LRU cache of
// capacity C lines misses exactly the references drawn from depth > C
// (plus compulsory references).
type mtfStack struct {
	lines []uint64
}

// push adds a brand-new line at the front (a compulsory reference).
func (s *mtfStack) push(line uint64) {
	s.lines = append(s.lines, 0)
	copy(s.lines[1:], s.lines)
	s.lines[0] = line
}

// prewarm fills the stack with n lines produced by gen(i), most recent
// first, so the reuse model starts in steady state rather than growing a
// footprint from nothing (the paper's traces are tens of millions to
// billions of references of warmed-up execution).
func (s *mtfStack) prewarm(n int, gen func(int) uint64) {
	s.lines = make([]uint64, n)
	for i := 0; i < n; i++ {
		s.lines[i] = gen(n - 1 - i)
	}
}

// refDepth references the line at 1-based depth d, moving it to the
// front, and returns its address. d must be in [1, len].
func (s *mtfStack) refDepth(d int) uint64 {
	i := d - 1
	line := s.lines[i]
	copy(s.lines[1:i+1], s.lines[:i])
	s.lines[0] = line
	return line
}

// depth returns the current stack depth.
func (s *mtfStack) depth() int { return len(s.lines) }

// zipfSampler draws 1-based stack depths from a truncated Zipf
// distribution P(d) ∝ 1/d^theta over [1, n] by inverse-CDF lookup.
// theta controls how quickly miss rate falls with cache capacity: larger
// theta concentrates reuse near the top of the stack (miss rate falls
// fast and then flattens), smaller theta spreads reuse across the whole
// footprint (miss rate falls slowly — the tomcatv shape).
type zipfSampler struct {
	cdf []float64 // cdf[i] = P(depth <= i+1)
}

// newZipfSampler builds a sampler over depths [1, n].
func newZipfSampler(n int, theta float64) *zipfSampler {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for d := 1; d <= n; d++ {
		sum += math.Pow(float64(d), -theta)
		cdf[d-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &zipfSampler{cdf: cdf}
}

// n returns the sampler's maximum depth.
func (z *zipfSampler) n() int { return len(z.cdf) }

// sample maps a uniform u in [0,1) to a depth in [1, n] via binary search.
func (z *zipfSampler) sample(u float64) int {
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// xorshift64 is a small deterministic PRNG (Marsaglia xorshift*), used so
// traces are reproducible across runs and platforms without pulling in
// math/rand ordering guarantees.
type xorshift64 struct{ state uint64 }

// newXorshift seeds the generator; a zero seed is remapped to a fixed
// non-zero constant since the xorshift state must never be zero.
func newXorshift(seed uint64) *xorshift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift64{state: seed}
}

// next returns the next 64-bit value.
func (x *xorshift64) next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0, 1).
func (x *xorshift64) float64() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (x *xorshift64) intn(n int) int {
	return int(x.next() % uint64(n))
}
