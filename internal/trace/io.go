package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format: the 8-byte magic header "TLTRACE1" followed by one
// record per reference — a kind byte (0 instr, 1 data read, 2 data write)
// and the address as an unsigned varint. Compact, deterministic, and
// stream-decodable.
var binaryMagic = [8]byte{'T', 'L', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadMagic is returned when a binary trace lacks the format header.
var ErrBadMagic = errors.New("trace: bad magic (not a TLTRACE1 binary trace)")

// BinaryWriter encodes references to an io.Writer in the binary format.
type BinaryWriter struct {
	w     *bufio.Writer
	n     uint64
	wrote bool
}

// NewBinaryWriter wraps w. The header is written lazily on first record
// (or by Flush), so constructing a writer cannot fail.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one reference.
func (bw *BinaryWriter) Write(r Ref) error {
	if !bw.wrote {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wrote = true
	}
	if err := bw.w.WriteByte(byte(r.Kind)); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], r.Addr)
	if _, err := bw.w.Write(buf[:n]); err != nil {
		return err
	}
	bw.n++
	return nil
}

// Count reports how many references have been written.
func (bw *BinaryWriter) Count() uint64 { return bw.n }

// Flush writes the header (if nothing was written yet) and any buffered
// records to the underlying writer.
func (bw *BinaryWriter) Flush() error {
	if !bw.wrote {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wrote = true
	}
	return bw.w.Flush()
}

// BinaryReader decodes a binary trace as a Stream.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	err    error
}

// NewBinaryReader wraps r; header validation happens on the first Next.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next reference. It reports false at EOF or on error;
// check Err afterwards.
func (br *BinaryReader) Next() (Ref, bool) {
	if br.err != nil {
		return Ref{}, false
	}
	if !br.header {
		var m [8]byte
		if _, err := io.ReadFull(br.r, m[:]); err != nil {
			br.err = fmt.Errorf("trace: reading header: %w", err)
			return Ref{}, false
		}
		if m != binaryMagic {
			br.err = ErrBadMagic
			return Ref{}, false
		}
		br.header = true
	}
	k, err := br.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			br.err = err
		}
		return Ref{}, false
	}
	if k > byte(Write) {
		br.err = fmt.Errorf("trace: invalid kind byte %d", k)
		return Ref{}, false
	}
	a, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.err = fmt.Errorf("trace: truncated record: %w", err)
		return Ref{}, false
	}
	return Ref{Kind: Kind(k), Addr: a}, true
}

// Err reports the first decode error, or nil after a clean EOF.
func (br *BinaryReader) Err() error { return br.err }

// Text trace format: the classic Dinero "din" layout, one reference per
// line as "<label> <hex address>", where label 0 is a data read, 1 a data
// write, and 2 an instruction fetch.

// TextWriter encodes references in din format.
type TextWriter struct {
	w *bufio.Writer
	n uint64
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one reference as a din line.
func (tw *TextWriter) Write(r Ref) error {
	var label byte
	switch r.Kind {
	case Instr:
		label = '2'
	case Write:
		label = '1'
	default:
		label = '0'
	}
	if err := tw.w.WriteByte(label); err != nil {
		return err
	}
	if err := tw.w.WriteByte(' '); err != nil {
		return err
	}
	if _, err := tw.w.WriteString(strconv.FormatUint(r.Addr, 16)); err != nil {
		return err
	}
	tw.n++
	return tw.w.WriteByte('\n')
}

// Count reports how many references have been written.
func (tw *TextWriter) Count() uint64 { return tw.n }

// Flush drains buffered lines to the underlying writer.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader decodes a din-format trace as a Stream. Blank lines and
// lines starting with '#' are skipped.
type TextReader struct {
	s    *bufio.Scanner
	line int
	err  error
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<20)
	return &TextReader{s: s}
}

// Next decodes the next reference; check Err after it reports false.
func (tr *TextReader) Next() (Ref, bool) {
	if tr.err != nil {
		return Ref{}, false
	}
	for tr.s.Scan() {
		tr.line++
		text := strings.TrimSpace(tr.s.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			tr.err = fmt.Errorf("trace: line %d: want \"label addr\", got %q", tr.line, text)
			return Ref{}, false
		}
		var kind Kind
		switch fields[0] {
		case "0":
			kind = Data
		case "1":
			kind = Write
		case "2":
			kind = Instr
		default:
			tr.err = fmt.Errorf("trace: line %d: unknown label %q", tr.line, fields[0])
			return Ref{}, false
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			tr.err = fmt.Errorf("trace: line %d: bad address %q: %v", tr.line, fields[1], err)
			return Ref{}, false
		}
		return Ref{Kind: kind, Addr: addr}, true
	}
	tr.err = tr.s.Err()
	return Ref{}, false
}

// Err reports the first decode error, or nil after a clean EOF.
func (tr *TextReader) Err() error { return tr.err }

// WriteAll drains a stream into any per-record writer.
func WriteAll(s Stream, write func(Ref) error) (uint64, error) {
	var n uint64
	for {
		r, ok := s.Next()
		if !ok {
			return n, nil
		}
		if err := write(r); err != nil {
			return n, err
		}
		n++
	}
}
