package trace

// xorshift64 is a small deterministic PRNG (Marsaglia xorshift*), used so
// traces are reproducible across runs and platforms without pulling in
// math/rand ordering guarantees.
type xorshift64 struct{ state uint64 }

// newXorshift seeds the generator; a zero seed is remapped to a fixed
// non-zero constant since the xorshift state must never be zero.
func newXorshift(seed uint64) *xorshift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift64{state: seed}
}

// next returns the next 64-bit value.
func (x *xorshift64) next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0, 1).
func (x *xorshift64) float64() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (x *xorshift64) intn(n int) int {
	return int(x.next() % uint64(n))
}
