package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	refs := []Ref{
		{Instr, 0},
		{Data, 1},
		{Instr, 0x7FFFFFFF},
		{Data, 0xFFFFFFFFFFFFFFFF},
		{Instr, 0x123456789A},
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != uint64(len(refs)) {
		t.Errorf("Count() = %d, want %d", bw.Count(), len(refs))
	}

	br := NewBinaryReader(&buf)
	for i, want := range refs {
		got, ok := br.Next()
		if !ok {
			t.Fatalf("Next() #%d ended early: %v", i, br.Err())
		}
		if got != want {
			t.Errorf("ref %d = %v, want %v", i, got, want)
		}
	}
	if _, ok := br.Next(); ok {
		t.Error("stream did not end")
	}
	if br.Err() != nil {
		t.Errorf("clean EOF left error: %v", br.Err())
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n))
		for i := range refs {
			refs[i] = Ref{Kind: Kind(rng.Intn(2)), Addr: rng.Uint64() >> uint(rng.Intn(64))}
		}
		var buf bytes.Buffer
		bw := NewBinaryWriter(&buf)
		for _, r := range refs {
			if bw.Write(r) != nil {
				return false
			}
		}
		if bw.Flush() != nil {
			return false
		}
		got := Collect(NewBinaryReader(bytes.NewReader(buf.Bytes())), 0)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEmptyFileHasHeader(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	if _, ok := br.Next(); ok {
		t.Error("empty trace yielded a ref")
	}
	if br.Err() != nil {
		t.Errorf("empty trace errored: %v", br.Err())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	br := NewBinaryReader(strings.NewReader("NOTATRACE-------"))
	if _, ok := br.Next(); ok {
		t.Fatal("bad magic accepted")
	}
	if !errors.Is(br.Err(), ErrBadMagic) {
		t.Errorf("Err() = %v, want ErrBadMagic", br.Err())
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(Ref{Data, 0xFFFFFFFF}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	br := NewBinaryReader(bytes.NewReader(cut))
	if _, ok := br.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if br.Err() == nil {
		t.Error("truncated record left no error")
	}
}

func TestBinaryInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.WriteByte(9) // invalid kind
	buf.WriteByte(0)
	br := NewBinaryReader(&buf)
	if _, ok := br.Next(); ok {
		t.Fatal("invalid kind accepted")
	}
	if br.Err() == nil {
		t.Error("invalid kind left no error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := []Ref{{Instr, 0x401000}, {Data, 0x10000004}, {Data, 0}}
	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != 3 {
		t.Errorf("Count() = %d", tw.Count())
	}
	got := Collect(NewTextReader(&buf), 0)
	if len(got) != len(refs) {
		t.Fatalf("round trip %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
}

func TestTextReaderDineroLabels(t *testing.T) {
	// 0 = read, 1 = write, 2 = ifetch.
	in := "0 1000\n1 2000\n2 401000\n"
	got := Collect(NewTextReader(strings.NewReader(in)), 0)
	want := []Ref{{Data, 0x1000}, {Write, 0x2000}, {Instr, 0x401000}}
	if len(got) != 3 {
		t.Fatalf("decoded %d refs", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n  \n2 10\n# another\n0 20\n"
	got := Collect(NewTextReader(strings.NewReader(in)), 0)
	if len(got) != 2 {
		t.Fatalf("decoded %d refs, want 2", len(got))
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []string{
		"5 1000\n",  // unknown label
		"2\n",       // missing address
		"2 zzzz_\n", // bad hex
	}
	for _, in := range cases {
		tr := NewTextReader(strings.NewReader(in))
		if _, ok := tr.Next(); ok {
			t.Errorf("input %q decoded", in)
		}
		if tr.Err() == nil {
			t.Errorf("input %q left no error", in)
		}
	}
}

func TestWriteAll(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Data, 2}}
	var got []Ref
	n, err := WriteAll(NewSliceStream(refs), func(r Ref) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != 2 || len(got) != 2 {
		t.Errorf("WriteAll = %d,%v; collected %d", n, err, len(got))
	}
	wantErr := errors.New("sink full")
	_, err = WriteAll(NewSliceStream(refs), func(Ref) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("WriteAll error = %v, want %v", err, wantErr)
	}
}
