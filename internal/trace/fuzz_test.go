package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTextReader feeds arbitrary text to the din parser: it must never
// panic, and anything it accepts must round-trip through the writer.
func FuzzTextReader(f *testing.F) {
	f.Add("2 401000\n0 1000\n1 2000\n")
	f.Add("# comment\n\n2 0\n")
	f.Add("garbage")
	f.Add("2")
	f.Add("9 10\n")
	f.Add("2 zz\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr := NewTextReader(strings.NewReader(input))
		var refs []Ref
		for {
			r, ok := tr.Next()
			if !ok {
				break
			}
			refs = append(refs, r)
			if len(refs) > 10000 {
				break
			}
		}
		// Whatever was accepted must round-trip.
		var buf bytes.Buffer
		tw := NewTextWriter(&buf)
		for _, r := range refs {
			if err := tw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		got := Collect(NewTextReader(&buf), 0)
		if len(got) != len(refs) {
			t.Fatalf("round trip lost refs: %d -> %d", len(refs), len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("round trip changed ref %d: %v -> %v", i, refs[i], got[i])
			}
		}
	})
}

// FuzzBinaryReader feeds arbitrary bytes to the binary decoder: it must
// never panic and must stop cleanly (error or EOF) on malformed input.
func FuzzBinaryReader(f *testing.F) {
	var good bytes.Buffer
	bw := NewBinaryWriter(&good)
	_ = bw.Write(Ref{Instr, 0x401000})
	_ = bw.Write(Ref{Write, 0xFFFFFFFFFFFF})
	_ = bw.Flush()
	f.Add(good.Bytes())
	f.Add([]byte("TLTRACE1"))
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		br := NewBinaryReader(bytes.NewReader(input))
		n := 0
		for {
			_, ok := br.Next()
			if !ok {
				break
			}
			n++
			if n > 100000 {
				break
			}
		}
		// After the stream ends, Next must stay ended.
		if _, ok := br.Next(); ok {
			t.Fatal("reader resumed after reporting end")
		}
	})
}

// FuzzGeneratorParams drives the generator constructor with arbitrary
// parameters: Validate and NewGenerator must agree (no panic on
// validated params) and the stream must honor its invariants.
func FuzzGeneratorParams(f *testing.F) {
	f.Add(uint64(1), 0.7, int64(8192), 5.0, 1.3, 1024, 1.3, 0.01, 0.1, 2, 256, 0.3)
	f.Fuzz(func(t *testing.T, seed uint64, instrFrac float64, codeBytes int64,
		meanRun, iTheta float64, dataLines int, dTheta, dNewFrac, streamFrac float64,
		streams, streamLines int, writeFrac float64) {
		p := GenParams{
			Name: "fuzz", Seed: seed,
			InstrFrac: instrFrac,
			CodeBytes: codeBytes, MeanRun: meanRun, ITheta: iTheta,
			DataLines: dataLines, DTheta: dTheta, DNewFrac: dNewFrac,
			StreamFrac: streamFrac, Streams: streams, StreamLines: streamLines,
			WriteFrac: writeFrac,
		}
		if err := p.Validate(); err != nil {
			return // invalid params are rejected, nothing more to check
		}
		// Guard against pathological memory use from fuzzer-chosen sizes.
		if p.CodeBytes > 1<<22 || p.DataLines > 1<<18 || p.StreamLines > 1<<20 {
			return
		}
		s := Generate(p, 200)
		n := 0
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Kind != Instr && r.Kind != Data && r.Kind != Write {
				t.Fatalf("invalid kind %v", r.Kind)
			}
			n++
		}
		if n != 200 {
			t.Fatalf("generated %d refs, want 200", n)
		}
	})
}
