package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if Instr.String() != "instr" || Data.String() != "data" {
		t.Errorf("kind names: %v %v", Instr, Data)
	}
	if got := Kind(7).String(); got != "Kind(7)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestSliceStream(t *testing.T) {
	refs := []Ref{{Instr, 0x10}, {Data, 0x20}, {Instr, 0x30}}
	s := NewSliceStream(refs)
	for i, want := range refs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("Next() #%d = %v,%v want %v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("Next() after exhaustion reported ok")
	}
	s.Reset()
	if got, ok := s.Next(); !ok || got != refs[0] {
		t.Errorf("after Reset Next() = %v,%v", got, ok)
	}
}

func TestLimit(t *testing.T) {
	refs := make([]Ref, 10)
	s := NewLimit(NewSliceStream(refs), 3)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("Limit(3) yielded %d refs", n)
	}
	// Limit larger than the stream: stops at stream end.
	s = NewLimit(NewSliceStream(refs), 100)
	n = 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("Limit(100) over 10 refs yielded %d", n)
	}
}

func TestCollect(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Data, 2}, {Instr, 3}}
	got := Collect(NewSliceStream(refs), 0)
	if len(got) != 3 {
		t.Errorf("Collect(0) = %d refs, want 3", len(got))
	}
	got = Collect(NewSliceStream(refs), 2)
	if len(got) != 2 {
		t.Errorf("Collect(2) = %d refs, want 2", len(got))
	}
}

func TestCount(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Data, 2}, {Instr, 3}, {Instr, 4}}
	i, d := Count(NewSliceStream(refs))
	if i != 3 || d != 1 {
		t.Errorf("Count = %d,%d want 3,1", i, d)
	}
}

func TestZipfSamplerRange(t *testing.T) {
	z := newZipfSampler(100, 1.3)
	if z.n() != 100 {
		t.Fatalf("n() = %d", z.n())
	}
	for _, u := range []float64{0, 0.1, 0.5, 0.9, 0.999999} {
		d := z.sample(u)
		if d < 1 || d > 100 {
			t.Errorf("sample(%v) = %d out of [1,100]", u, d)
		}
	}
	if d := z.sample(0); d != 1 {
		t.Errorf("sample(0) = %d, want 1 (head of distribution)", d)
	}
}

func TestZipfSamplerMonotone(t *testing.T) {
	z := newZipfSampler(1000, 1.5)
	prev := 0
	for u := 0.0; u < 1.0; u += 0.001 {
		d := z.sample(u)
		if d < prev {
			t.Fatalf("sample not monotone in u: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestZipfThetaControlsTail(t *testing.T) {
	// Smaller theta spreads mass deeper: the u=0.9 quantile should sit
	// deeper for theta=0.8 than for theta=1.6.
	flat := newZipfSampler(10000, 0.8)
	steep := newZipfSampler(10000, 1.6)
	if flat.sample(0.9) <= steep.sample(0.9) {
		t.Errorf("flat(0.9)=%d should exceed steep(0.9)=%d",
			flat.sample(0.9), steep.sample(0.9))
	}
}

func TestZipfSamplerDegenerate(t *testing.T) {
	z := newZipfSampler(0, 1.0) // clamped to n=1
	if d := z.sample(0.5); d != 1 {
		t.Errorf("degenerate sampler returned %d", d)
	}
}

func TestMTFStack(t *testing.T) {
	var s mtfStack
	s.push(10)
	s.push(20)
	s.push(30) // stack: 30 20 10
	if s.depth() != 3 {
		t.Fatalf("depth = %d", s.depth())
	}
	if got := s.refDepth(3); got != 10 {
		t.Errorf("refDepth(3) = %d, want 10", got)
	}
	// stack now: 10 30 20
	if got := s.refDepth(1); got != 10 {
		t.Errorf("refDepth(1) = %d, want 10", got)
	}
	if got := s.refDepth(2); got != 30 {
		t.Errorf("refDepth(2) = %d, want 30", got)
	}
	// stack now: 30 10 20
	if got := s.refDepth(3); got != 20 {
		t.Errorf("refDepth(3) = %d, want 20", got)
	}
}

func TestMTFPrewarm(t *testing.T) {
	var s mtfStack
	s.prewarm(5, func(i int) uint64 { return uint64(100 + i) })
	if s.depth() != 5 {
		t.Fatalf("depth = %d", s.depth())
	}
	// Most recent (depth 1) should be the highest index.
	if got := s.refDepth(1); got != 104 {
		t.Errorf("depth-1 line = %d, want 104", got)
	}
	// Deepest is index 0.
	if got := s.refDepth(5); got != 100 {
		t.Errorf("depth-5 line = %d, want 100", got)
	}
}

func TestXorshiftDeterminismAndRange(t *testing.T) {
	a, b := newXorshift(7), newXorshift(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newXorshift(0) // zero seed remapped
	if c.state == 0 {
		t.Error("zero seed left state zero")
	}
	for i := 0; i < 1000; i++ {
		f := a.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64() = %v out of [0,1)", f)
		}
		n := a.intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("intn(17) = %d", n)
		}
	}
}

func TestSkip(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Instr, 2}, {Instr, 3}, {Instr, 4}}
	s := NewSkip(NewSliceStream(refs), 2)
	got := Collect(s, 0)
	if len(got) != 2 || got[0].Addr != 3 {
		t.Errorf("Skip(2) = %v", got)
	}
	// Skipping past the end yields an empty stream, not a panic.
	s = NewSkip(NewSliceStream(refs), 10)
	if got := Collect(s, 0); len(got) != 0 {
		t.Errorf("Skip(10) over 4 refs = %v", got)
	}
}

func TestTee(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Data, 2}}
	var seen []Ref
	s := NewTee(NewSliceStream(refs), func(r Ref) { seen = append(seen, r) })
	got := Collect(s, 0)
	if len(got) != 2 || len(seen) != 2 {
		t.Fatalf("Tee forwarded %d, observed %d", len(got), len(seen))
	}
	for i := range refs {
		if got[i] != refs[i] || seen[i] != refs[i] {
			t.Errorf("ref %d mangled", i)
		}
	}
}
