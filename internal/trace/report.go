package trace

// This file is the machine-readable form of a Profile: the same report
// Render prints, as a stable JSON document (cmd/traceinfo -json), so
// service clients and scripts can consume the analyzer without parsing
// aligned text.

import (
	"encoding/json"
	"io"
)

// reportFormat identifies the traceinfo JSON schema version.
//
// Version 2 is strictly additive over version 1: it introduces the
// unique-address footprints (unique_instr_addrs, unique_data_addrs) and
// the read/write ratio (read_write_ratio) the 3C compulsory-miss
// cross-check consumes, changing no existing field's name, type, or
// meaning. Consumers written against twolevel-traceinfo/1 can read a /2
// document by relaxing the version check; the version is bumped (rather
// than silently extended) because this format promises that consumers
// reject majors they do not know.
const reportFormat = "twolevel-traceinfo/2"

// HistBucket is one power-of-two stack-distance bucket: Count reuses at
// LRU distance [MinLines, 2×MinLines).
type HistBucket struct {
	MinLines int    `json:"min_lines"`
	Count    uint64 `json:"count"`
}

// CapacityMiss is the estimated fully-associative LRU data miss ratio at
// one cache capacity.
type CapacityMiss struct {
	Lines     int     `json:"lines"`
	Bytes     int64   `json:"bytes"`
	MissRatio float64 `json:"miss_ratio"`
}

// Report is the JSON form of a profile: the raw counts plus the derived
// ratios Render prints.
type Report struct {
	Format string `json:"format"`
	Source string `json:"source,omitempty"`

	Refs      uint64  `json:"refs"`
	Instr     uint64  `json:"instr"`
	Loads     uint64  `json:"loads"`
	Stores    uint64  `json:"stores"`
	InstrFrac float64 `json:"instr_frac"`
	StoreFrac float64 `json:"store_frac"`

	CodeLines int   `json:"code_lines"`
	CodeBytes int64 `json:"code_bytes"`
	DataLines int   `json:"data_lines"`
	DataBytes int64 `json:"data_bytes"`

	// Unique-address footprints and the read/write ratio (v2 additions).
	UniqueInstrAddrs int     `json:"unique_instr_addrs"`
	UniqueDataAddrs  int     `json:"unique_data_addrs"`
	ReadWriteRatio   float64 `json:"read_write_ratio"`

	SequentialInstrFrac float64 `json:"sequential_instr_frac"`

	StackHistogram []HistBucket   `json:"stack_histogram"`
	ColdDataRefs   uint64         `json:"cold_data_refs"`
	FarDataRefs    uint64         `json:"far_data_refs"`
	MissByCapacity []CapacityMiss `json:"miss_ratio_by_capacity"`
}

// Report builds the JSON form of the profile. source labels the profiled
// stream (workload name or trace path); the capacity table matches
// Render's (64 lines to 64K lines, ×4).
func (p Profile) Report(source string) Report {
	r := Report{
		Format:              reportFormat,
		Source:              source,
		Refs:                p.Refs,
		Instr:               p.Instr,
		Loads:               p.Loads,
		Stores:              p.Stores,
		InstrFrac:           p.InstrFrac(),
		StoreFrac:           p.StoreFrac(),
		CodeLines:           p.UniqueInstrLines,
		CodeBytes:           int64(p.UniqueInstrLines) << lineShiftDefault,
		DataLines:           p.UniqueDataLines,
		DataBytes:           int64(p.UniqueDataLines) << lineShiftDefault,
		UniqueInstrAddrs:    p.UniqueInstrAddrs,
		UniqueDataAddrs:     p.UniqueDataAddrs,
		ReadWriteRatio:      p.ReadWriteRatio(),
		SequentialInstrFrac: p.SequentialInstrFrac,
		ColdDataRefs:        p.ColdDataRefs,
		FarDataRefs:         p.FarDataRefs,
		StackHistogram:      []HistBucket{},
		MissByCapacity:      []CapacityMiss{},
	}
	for b, n := range p.DataStackHistogram {
		if n == 0 {
			continue
		}
		r.StackHistogram = append(r.StackHistogram, HistBucket{MinLines: 1 << uint(b), Count: n})
	}
	for lines := 64; lines <= 65536; lines *= 4 {
		r.MissByCapacity = append(r.MissByCapacity, CapacityMiss{
			Lines:     lines,
			Bytes:     int64(lines) << lineShiftDefault,
			MissRatio: p.MissRatioAtCapacity(lines),
		})
	}
	return r
}

// RenderJSON writes the profile report as indented JSON.
func (p Profile) RenderJSON(w io.Writer, source string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Report(source))
}
