package trace_test

import (
	"fmt"

	"twolevel/internal/trace"
)

// A synthetic workload is a deterministic function of its parameters:
// the same GenParams always produce the same reference stream.
func ExampleGenerate() {
	p := trace.GenParams{
		Name: "demo", Seed: 42,
		InstrFrac: 0.75,
		CodeBytes: 8 << 10, MeanRun: 5, ITheta: 1.4,
		DataLines: 512, DTheta: 1.4, DNewFrac: 0.01,
	}
	instr, data := trace.Count(trace.Generate(p, 100_000))
	fmt.Printf("instruction fraction: %.2f\n", float64(instr)/float64(instr+data))
	// Output:
	// instruction fraction: 0.75
}

// Analyze profiles a stream: the stack-distance histogram it computes is
// the miss-rate-versus-capacity function of a fully-associative LRU cache.
func ExampleAnalyze() {
	refs := []trace.Ref{
		{Kind: trace.Data, Addr: 0x1000},
		{Kind: trace.Data, Addr: 0x2000},
		{Kind: trace.Data, Addr: 0x1000}, // reuse at stack distance 2
		{Kind: trace.Write, Addr: 0x2000},
	}
	p := trace.Analyze(trace.NewSliceStream(refs))
	fmt.Printf("loads %d, stores %d, cold %d\n", p.Loads, p.Stores, p.ColdDataRefs)
	fmt.Printf("miss ratio at 1-line capacity: %.2f\n", p.MissRatioAtCapacity(1))
	fmt.Printf("miss ratio at 2-line capacity: %.2f\n", p.MissRatioAtCapacity(2))
	// Output:
	// loads 3, stores 1, cold 2
	// miss ratio at 1-line capacity: 1.00
	// miss ratio at 2-line capacity: 0.50
}
