package trace

import (
	"bytes"
	"testing"
)

func TestWriteKindString(t *testing.T) {
	if Write.String() != "write" {
		t.Errorf("Write.String() = %q", Write)
	}
	if !Write.IsData() || !Data.IsData() || Instr.IsData() {
		t.Error("IsData() classification wrong")
	}
}

func TestWriteFracLabelsOnly(t *testing.T) {
	// Enabling WriteFrac must not change addresses or ordering — only
	// the Data/Write labels.
	p := testParams()
	base := Collect(Generate(p, 20_000), 0)
	p.WriteFrac = 0.4
	labeled := Collect(Generate(p, 20_000), 0)
	if len(base) != len(labeled) {
		t.Fatalf("lengths differ: %d vs %d", len(base), len(labeled))
	}
	for i := range base {
		if base[i].Addr != labeled[i].Addr {
			t.Fatalf("ref %d address changed: %#x vs %#x", i, base[i].Addr, labeled[i].Addr)
		}
		if base[i].Kind == Instr && labeled[i].Kind != Instr {
			t.Fatalf("ref %d instruction relabeled to %v", i, labeled[i].Kind)
		}
		if base[i].Kind == Data && !labeled[i].Kind.IsData() {
			t.Fatalf("ref %d data relabeled to %v", i, labeled[i].Kind)
		}
	}
}

func TestWriteFracProportion(t *testing.T) {
	p := testParams()
	p.WriteFrac = 0.3
	_, loads, stores := CountKinds(Generate(p, 200_000))
	frac := float64(stores) / float64(loads+stores)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("store fraction = %.3f, want ~0.30", frac)
	}
}

func TestWriteFracValidate(t *testing.T) {
	p := testParams()
	p.WriteFrac = 1.2
	if p.Validate() == nil {
		t.Error("WriteFrac > 1 accepted")
	}
	p.WriteFrac = -0.1
	if p.Validate() == nil {
		t.Error("negative WriteFrac accepted")
	}
}

func TestCountKinds(t *testing.T) {
	refs := []Ref{{Instr, 1}, {Data, 2}, {Write, 3}, {Write, 4}}
	i, l, s := CountKinds(NewSliceStream(refs))
	if i != 1 || l != 1 || s != 2 {
		t.Errorf("CountKinds = %d,%d,%d", i, l, s)
	}
	// Count folds writes into data.
	instr, data := Count(NewSliceStream(refs))
	if instr != 1 || data != 3 {
		t.Errorf("Count = %d,%d", instr, data)
	}
}

func TestWriteRoundTripsBothFormats(t *testing.T) {
	refs := []Ref{{Write, 0x1234}, {Data, 0x5678}, {Instr, 0x9ABC}}
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got := Collect(NewBinaryReader(&bin), 0)
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("binary ref %d = %v, want %v", i, got[i], refs[i])
		}
	}

	var txt bytes.Buffer
	tw := NewTextWriter(&txt)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got = Collect(NewTextReader(&txt), 0)
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("text ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
}
