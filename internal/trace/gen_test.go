package trace

import (
	"math"
	"testing"
)

// testParams is a small, fast generator configuration.
func testParams() GenParams {
	return GenParams{
		Name: "test", Seed: 1,
		InstrFrac: 0.75,
		CodeBytes: 16 << 10, MeanRun: 6, ITheta: 1.4,
		DataLines: 1024, DTheta: 1.4, DNewFrac: 0.01,
		StreamFrac: 0.1, Streams: 2, StreamLines: 256,
	}
}

func TestGenParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*GenParams)
	}{
		{"zero instr frac", func(p *GenParams) { p.InstrFrac = 0 }},
		{"instr frac below half", func(p *GenParams) { p.InstrFrac = 0.4 }},
		{"instr frac above 1", func(p *GenParams) { p.InstrFrac = 1.5 }},
		{"tiny code", func(p *GenParams) { p.CodeBytes = 8 }},
		{"mean run below 1", func(p *GenParams) { p.MeanRun = 0.5 }},
		{"no data lines", func(p *GenParams) { p.DataLines = 0 }},
		{"negative stream frac", func(p *GenParams) { p.StreamFrac = -0.1 }},
		{"stream frac above 1", func(p *GenParams) { p.StreamFrac = 1.1 }},
		{"streams missing", func(p *GenParams) { p.StreamFrac = 0.5; p.Streams = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testParams()
			tc.mut(&p)
			if p.Validate() == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Collect(Generate(testParams(), 5000), 0)
	b := Collect(Generate(testParams(), 5000), 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p2 := testParams()
	p2.Seed = 2
	a := Collect(Generate(testParams(), 2000), 0)
	b := Collect(Generate(p2, 2000), 0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorInstrFraction(t *testing.T) {
	instr, data := Count(Generate(testParams(), 200_000))
	got := float64(instr) / float64(instr+data)
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("instruction fraction = %.4f, want 0.75 +- 0.01", got)
	}
}

func TestGeneratorAddressRegions(t *testing.T) {
	p := testParams()
	s := Generate(p, 100_000)
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		switch r.Kind {
		case Instr:
			if r.Addr < codeBase || r.Addr >= codeBase+uint64(p.CodeBytes) {
				t.Fatalf("instruction address %#x outside code region", r.Addr)
			}
			if r.Addr%instrSize != 0 {
				t.Fatalf("instruction address %#x not %d-byte aligned", r.Addr, instrSize)
			}
		case Data:
			if r.Addr < heapBase {
				t.Fatalf("data address %#x below heap base", r.Addr)
			}
		}
	}
}

func TestGeneratorInstructionRuns(t *testing.T) {
	// Consecutive instruction fetches should usually advance by 4 bytes;
	// breaks happen only at taken branches (~1/MeanRun of fetches).
	p := testParams()
	s := Generate(p, 100_000)
	var prev uint64
	sequential, breaks := 0, 0
	first := true
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Kind != Instr {
			continue
		}
		if !first {
			if r.Addr == prev+instrSize {
				sequential++
			} else {
				breaks++
			}
		}
		prev, first = r.Addr, false
	}
	frac := float64(breaks) / float64(sequential+breaks)
	want := 1 / p.MeanRun
	if frac < want*0.5 || frac > want*1.8 {
		t.Errorf("branch fraction = %.4f, want near %.4f", frac, want)
	}
}

func TestGeneratorStreamsAreSequential(t *testing.T) {
	// With StreamFrac 1, every data ref walks an array: per stream,
	// addresses advance by 8 bytes.
	p := testParams()
	p.StreamFrac = 1
	p.Streams = 1
	g := NewGenerator(p)
	var prev uint64
	seen := 0
	for seen < 1000 {
		r, _ := g.Next()
		if r.Kind != Data {
			continue
		}
		if seen > 0 && r.Addr != prev+8 && r.Addr > prev {
			t.Fatalf("stream advanced %#x -> %#x, want +8", prev, r.Addr)
		}
		prev = r.Addr
		seen++
	}
}

func TestGeneratorPrewarmedFootprint(t *testing.T) {
	// The heap stack starts at full depth, so deep reuse is possible
	// from the first reference: distinct data lines seen early should
	// substantially exceed what cold-start growth would allow.
	p := testParams()
	p.StreamFrac = 0
	p.DTheta = 0.8 // flat: hits deep lines often
	s := Generate(p, 50_000)
	lines := map[uint64]bool{}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Kind == Data {
			lines[r.Addr>>4] = true
		}
	}
	if len(lines) < 300 {
		t.Errorf("distinct data lines = %d; prewarmed footprint should expose deep reuse", len(lines))
	}
}

func TestGeneratorEndless(t *testing.T) {
	g := NewGenerator(testParams())
	for i := 0; i < 1000; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatal("raw generator ended")
		}
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid params")
		}
	}()
	p := testParams()
	p.DataLines = 0
	NewGenerator(p)
}

func TestGeneratorParamsAccessor(t *testing.T) {
	p := testParams()
	g := NewGenerator(p)
	if g.Params().Name != "test" {
		t.Errorf("Params().Name = %q", g.Params().Name)
	}
}
