package trace

import (
	"strings"
	"testing"
)

func TestAnalyzeCountsAndFootprints(t *testing.T) {
	refs := []Ref{
		{Instr, 0x1000}, {Instr, 0x1004}, {Instr, 0x1008},
		{Data, 0x20000}, {Write, 0x20010}, {Data, 0x20000},
	}
	p := Analyze(NewSliceStream(refs))
	if p.Refs != 6 || p.Instr != 3 || p.Loads != 2 || p.Stores != 1 {
		t.Errorf("counts = %+v", p)
	}
	if p.UniqueInstrLines != 1 {
		t.Errorf("UniqueInstrLines = %d, want 1 (all in 0x1000 line)", p.UniqueInstrLines)
	}
	if p.UniqueDataLines != 2 {
		t.Errorf("UniqueDataLines = %d, want 2", p.UniqueDataLines)
	}
	// Both followers are sequential (+4).
	if p.SequentialInstrFrac != 1.0 {
		t.Errorf("SequentialInstrFrac = %v, want 1.0", p.SequentialInstrFrac)
	}
	if p.InstrFrac() != 0.5 {
		t.Errorf("InstrFrac() = %v", p.InstrFrac())
	}
	if got := p.StoreFrac(); got != 1.0/3 {
		t.Errorf("StoreFrac() = %v", got)
	}
}

func TestAnalyzeStackDistances(t *testing.T) {
	// Reference pattern: A B A -> A's reuse at distance 2 (bucket 1);
	// B never reused; 2 cold refs.
	refs := []Ref{
		{Data, 0x1000}, {Data, 0x2000}, {Data, 0x1000},
	}
	p := Analyze(NewSliceStream(refs))
	if p.ColdDataRefs != 2 {
		t.Errorf("ColdDataRefs = %d, want 2", p.ColdDataRefs)
	}
	if len(p.DataStackHistogram) < 2 || p.DataStackHistogram[1] != 1 {
		t.Errorf("histogram = %v, want one reuse in bucket 1 (distance 2)", p.DataStackHistogram)
	}
	// Immediate reuse: distance 1, bucket 0.
	p = Analyze(NewSliceStream([]Ref{{Data, 0x1000}, {Data, 0x1008}}))
	if len(p.DataStackHistogram) < 1 || p.DataStackHistogram[0] != 1 {
		t.Errorf("histogram = %v, want one reuse in bucket 0", p.DataStackHistogram)
	}
}

func TestMissRatioAtCapacity(t *testing.T) {
	// A cyclic walk over 8 lines, repeated: every reuse at distance 8.
	var refs []Ref
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 8; i++ {
			refs = append(refs, Ref{Data, uint64(i) * 16})
		}
	}
	p := Analyze(NewSliceStream(refs))
	// Capacity 8+ lines: only the 8 cold misses out of 32 refs.
	if got, want := p.MissRatioAtCapacity(8), 8.0/32; got != want {
		t.Errorf("MissRatioAtCapacity(8) = %v, want %v", got, want)
	}
	// Capacity 4: all reuses at distance 8 miss too.
	if got := p.MissRatioAtCapacity(4); got != 1.0 {
		t.Errorf("MissRatioAtCapacity(4) = %v, want 1.0", got)
	}
}

func TestAnalyzeMonotoneMissRatio(t *testing.T) {
	p := Analyze(Generate(testParams(), 30_000))
	prev := 1.1
	for _, c := range []int{16, 64, 256, 1024, 4096} {
		mr := p.MissRatioAtCapacity(c)
		if mr > prev {
			t.Errorf("miss ratio rose with capacity at %d lines: %v > %v", c, mr, prev)
		}
		prev = mr
	}
}

func TestAnalyzeGeneratorConsistency(t *testing.T) {
	// The analyzer should recover the generator's own parameters.
	p := testParams()
	p.WriteFrac = 0.3
	prof := Analyze(Generate(p, 100_000))
	if f := prof.InstrFrac(); f < 0.74 || f > 0.76 {
		t.Errorf("InstrFrac = %.3f, want ~0.75", f)
	}
	if f := prof.StoreFrac(); f < 0.27 || f > 0.33 {
		t.Errorf("StoreFrac = %.3f, want ~0.30", f)
	}
	maxCode := int(p.CodeBytes / 16)
	if prof.UniqueInstrLines > maxCode {
		t.Errorf("code footprint %d exceeds configured %d lines", prof.UniqueInstrLines, maxCode)
	}
	if prof.SequentialInstrFrac < 0.5 {
		t.Errorf("sequential instr frac %.3f implausibly low", prof.SequentialInstrFrac)
	}
}

func TestProfileRender(t *testing.T) {
	var sb strings.Builder
	p := Analyze(Generate(testParams(), 20_000))
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"references", "code footprint", "stack-distance", "miss ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyStream(t *testing.T) {
	p := Analyze(NewSliceStream(nil))
	if p.Refs != 0 || p.InstrFrac() != 0 || p.StoreFrac() != 0 {
		t.Errorf("empty profile = %+v", p)
	}
	if p.MissRatioAtCapacity(64) != 0 {
		t.Error("empty profile miss ratio non-zero")
	}
}
