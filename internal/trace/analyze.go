package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Profile summarizes a reference stream: the quantities the study's
// calibration rests on (reference mix, footprints, spatial locality) plus
// an LRU stack-distance histogram of data lines — the distribution that
// determines miss rate as a function of cache capacity.
type Profile struct {
	// Refs counts total references; Instr/Loads/Stores break them down.
	Refs   uint64
	Instr  uint64
	Loads  uint64
	Stores uint64

	// UniqueInstrLines and UniqueDataLines are the touched footprints in
	// 16-byte lines.
	UniqueInstrLines int
	UniqueDataLines  int

	// UniqueInstrAddrs and UniqueDataAddrs are the touched footprints in
	// distinct byte addresses — finer than the line footprints, and the
	// denominators the 3C compulsory-miss cross-check uses (a level's
	// compulsory misses equal its unique line footprint, so addr/line
	// ratios bound how much spatial locality amortizes cold misses).
	UniqueInstrAddrs int
	UniqueDataAddrs  int

	// SequentialInstrFrac is the fraction of instruction fetches that
	// directly follow the previous one (spatial locality of code).
	SequentialInstrFrac float64

	// DataStackHistogram buckets LRU stack distances of data-line reuse
	// by power of two: bucket i counts reuses at distance [2^i, 2^(i+1)).
	// Cold (first-touch) references are in ColdDataRefs; reuses deeper
	// than the tracked window (2^16 lines) are in FarDataRefs.
	DataStackHistogram []uint64
	ColdDataRefs       uint64
	FarDataRefs        uint64
}

// maxTrackedLines bounds the exact stack-distance window; reuse beyond it
// is counted as FarDataRefs (it would miss in any on-chip cache anyway).
const maxTrackedLines = 1 << 16

// lineShiftDefault matches the study's 16-byte lines.
const lineShiftDefault = 4

// Analyze drains a stream and computes its profile. The stack-distance
// computation is exact (move-to-front over data lines); cost is
// O(refs × mean distance), fine for the trace lengths this study uses.
func Analyze(s Stream) Profile {
	var p Profile
	iLines := make(map[uint64]struct{})
	iAddrs := make(map[uint64]struct{})
	dAddrs := make(map[uint64]struct{})
	var prevInstr uint64
	var havePrev bool
	seq, iTotal := uint64(0), uint64(0)

	// Move-to-front list for exact LRU stack distances over data lines,
	// bounded at maxTrackedLines; seen distinguishes cold from far reuse.
	var stack []uint64
	seen := make(map[uint64]struct{})

	var hist []uint64
	bump := func(d int) {
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}

	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		p.Refs++
		switch r.Kind {
		case Instr:
			p.Instr++
			iTotal++
			line := r.Addr >> lineShiftDefault
			iLines[line] = struct{}{}
			iAddrs[r.Addr] = struct{}{}
			if havePrev && r.Addr == prevInstr+4 {
				seq++
			}
			prevInstr, havePrev = r.Addr, true
		default:
			if r.Kind == Write {
				p.Stores++
			} else {
				p.Loads++
			}
			dAddrs[r.Addr] = struct{}{}
			line := r.Addr >> lineShiftDefault
			// Find the line in the MTF stack.
			found := -1
			for i, l := range stack {
				if l == line {
					found = i
					break
				}
			}
			switch {
			case found >= 0:
				bump(found + 1)
				copy(stack[1:found+1], stack[:found])
				stack[0] = line
			default:
				if _, ok := seen[line]; ok {
					p.FarDataRefs++
				} else {
					p.ColdDataRefs++
					seen[line] = struct{}{}
				}
				if len(stack) < maxTrackedLines {
					stack = append(stack, 0)
				}
				copy(stack[1:], stack)
				stack[0] = line
			}
		}
	}
	p.UniqueInstrLines = len(iLines)
	p.UniqueDataLines = len(seen)
	p.UniqueInstrAddrs = len(iAddrs)
	p.UniqueDataAddrs = len(dAddrs)
	if iTotal > 1 {
		p.SequentialInstrFrac = float64(seq) / float64(iTotal-1)
	}
	p.DataStackHistogram = hist
	return p
}

// InstrFrac reports instruction fetches per reference.
func (p Profile) InstrFrac() float64 {
	if p.Refs == 0 {
		return 0
	}
	return float64(p.Instr) / float64(p.Refs)
}

// StoreFrac reports stores per data reference.
func (p Profile) StoreFrac() float64 {
	if d := p.Loads + p.Stores; d > 0 {
		return float64(p.Stores) / float64(d)
	}
	return 0
}

// ReadWriteRatio reports loads per store (0 for a store-free stream,
// where the ratio is undefined — callers should check Stores first).
func (p Profile) ReadWriteRatio() float64 {
	if p.Stores == 0 {
		return 0
	}
	return float64(p.Loads) / float64(p.Stores)
}

// MissRatioAtCapacity estimates the data miss ratio of a fully
// associative LRU cache holding `lines` data lines, from the stack
// histogram: reuses at distance > lines miss, plus all cold references.
func (p Profile) MissRatioAtCapacity(lines int) float64 {
	data := p.Loads + p.Stores
	if data == 0 {
		return 0
	}
	misses := p.ColdDataRefs + p.FarDataRefs
	for b, n := range p.DataStackHistogram {
		// Bucket b spans [2^b, 2^(b+1)); it misses when its lower bound
		// exceeds the capacity (conservative at the boundary bucket).
		if 1<<uint(b) > lines {
			misses += n
		}
	}
	return float64(misses) / float64(data)
}

// Render writes the profile as aligned text.
func (p Profile) Render(w io.Writer) error {
	fmt.Fprintf(w, "references      : %d (%d instr, %d loads, %d stores)\n",
		p.Refs, p.Instr, p.Loads, p.Stores)
	fmt.Fprintf(w, "instr fraction  : %.3f   store fraction of data: %.3f\n",
		p.InstrFrac(), p.StoreFrac())
	fmt.Fprintf(w, "read/write ratio: %.2f loads per store\n", p.ReadWriteRatio())
	fmt.Fprintf(w, "code footprint  : %d lines (%s), %d unique addresses\n",
		p.UniqueInstrLines, formatBytes(int64(p.UniqueInstrLines)<<lineShiftDefault), p.UniqueInstrAddrs)
	fmt.Fprintf(w, "data footprint  : %d lines (%s), %d unique addresses\n",
		p.UniqueDataLines, formatBytes(int64(p.UniqueDataLines)<<lineShiftDefault), p.UniqueDataAddrs)
	fmt.Fprintf(w, "sequential instr: %.3f\n", p.SequentialInstrFrac)
	fmt.Fprintln(w, "data LRU stack-distance histogram (per power-of-two bucket):")
	total := p.Loads + p.Stores
	for b, n := range p.DataStackHistogram {
		if n == 0 {
			continue
		}
		lo := 1 << uint(b)
		bar := int(math.Round(40 * float64(n) / float64(total)))
		fmt.Fprintf(w, "  >=%7d lines: %9d  %s\n", lo, n, bars(bar))
	}
	fmt.Fprintf(w, "  cold           : %9d   far (>%d lines): %d\n", p.ColdDataRefs, maxTrackedLines, p.FarDataRefs)
	fmt.Fprintln(w, "estimated fully-associative LRU data miss ratio by capacity:")
	caps := []int{64, 256, 1024, 4096, 16384, 65536}
	sort.Ints(caps)
	for _, c := range caps {
		fmt.Fprintf(w, "  %7d lines (%s): %.4f\n",
			c, formatBytes(int64(c)<<lineShiftDefault), p.MissRatioAtCapacity(c))
	}
	_, err := fmt.Fprintln(w)
	return err
}

func bars(n int) string {
	if n <= 0 {
		return ""
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
