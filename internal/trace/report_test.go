package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestProfileReport: the JSON report carries the same quantities Render
// prints, with the derived values consistent with the raw counts.
func TestProfileReport(t *testing.T) {
	p := Analyze(Generate(GenParams{
		Name: "t", Seed: 7, InstrFrac: 0.7,
		CodeBytes: 4096, MeanRun: 6, ITheta: 1.3,
		DataLines: 512, DTheta: 1.3, WriteFrac: 0.3,
	}, 50_000))
	r := p.Report("t")

	if r.Format != "twolevel-traceinfo/2" {
		t.Fatalf("format = %q", r.Format)
	}
	if r.Source != "t" {
		t.Fatalf("source = %q", r.Source)
	}
	if r.Refs != p.Refs || r.Instr != p.Instr || r.Loads != p.Loads || r.Stores != p.Stores {
		t.Fatal("raw counts do not match the profile")
	}
	if r.Instr+r.Loads+r.Stores != r.Refs {
		t.Fatalf("mix does not sum: %d+%d+%d != %d", r.Instr, r.Loads, r.Stores, r.Refs)
	}
	if r.InstrFrac != p.InstrFrac() || r.StoreFrac != p.StoreFrac() {
		t.Fatal("derived fractions do not match the profile")
	}
	if r.CodeBytes != int64(r.CodeLines)*16 || r.DataBytes != int64(r.DataLines)*16 {
		t.Fatal("byte footprints are not 16-byte-line multiples of the line footprints")
	}

	// v2 fields: address footprints are at least the line footprints and
	// at most 16x them; the read/write ratio matches the raw counts.
	if r.UniqueInstrAddrs < r.CodeLines || r.UniqueInstrAddrs > 16*r.CodeLines {
		t.Fatalf("unique instr addrs %d outside [%d, %d]", r.UniqueInstrAddrs, r.CodeLines, 16*r.CodeLines)
	}
	if r.UniqueDataAddrs < r.DataLines || r.UniqueDataAddrs > 16*r.DataLines {
		t.Fatalf("unique data addrs %d outside [%d, %d]", r.UniqueDataAddrs, r.DataLines, 16*r.DataLines)
	}
	if want := float64(r.Loads) / float64(r.Stores); r.Stores > 0 && r.ReadWriteRatio != want {
		t.Fatalf("read/write ratio = %v, want %v", r.ReadWriteRatio, want)
	}

	// Histogram buckets plus cold plus far cover every data reference.
	var hist uint64
	for _, b := range r.StackHistogram {
		if b.Count == 0 {
			t.Fatalf("zero bucket emitted at %d lines", b.MinLines)
		}
		hist += b.Count
	}
	if hist+r.ColdDataRefs+r.FarDataRefs != r.Loads+r.Stores {
		t.Fatal("stack histogram does not account for every data reference")
	}

	// The capacity table matches the Render table and is monotone
	// non-increasing in capacity.
	if len(r.MissByCapacity) != 6 || r.MissByCapacity[0].Lines != 64 || r.MissByCapacity[5].Lines != 65536 {
		t.Fatalf("capacity table = %+v", r.MissByCapacity)
	}
	for i, c := range r.MissByCapacity {
		if c.MissRatio != p.MissRatioAtCapacity(c.Lines) {
			t.Fatalf("capacity %d: ratio %v != profile %v", c.Lines, c.MissRatio, p.MissRatioAtCapacity(c.Lines))
		}
		if c.Bytes != int64(c.Lines)*16 {
			t.Fatalf("capacity %d: bytes %d", c.Lines, c.Bytes)
		}
		if i > 0 && c.MissRatio > r.MissByCapacity[i-1].MissRatio {
			t.Fatal("miss ratio increased with capacity")
		}
	}
}

// TestRenderJSONRoundTrip: the emitted document parses back into an
// identical report.
func TestRenderJSONRoundTrip(t *testing.T) {
	p := Analyze(Generate(GenParams{
		Name: "rt", Seed: 3, InstrFrac: 0.75,
		CodeBytes: 2048, MeanRun: 5, ITheta: 1.4,
		DataLines: 256, DTheta: 1.4, WriteFrac: 0.25,
	}, 20_000))
	var buf bytes.Buffer
	if err := p.RenderJSON(&buf, "rt"); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	want := p.Report("rt")
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", gotBytes, wantBytes)
	}
}
