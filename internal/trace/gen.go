package trace

import "fmt"

// GenParams parameterizes a synthetic workload generator. Each of the
// paper's seven SPEC89 workloads is described by one of these (see
// internal/spec); the parameters were calibrated so that simulated miss
// rates match the behaviour the paper reports (see spec's calibration
// tests).
//
// The model has three components:
//
//   - Instruction fetches: a program counter walks forward 4 bytes per
//     fetch. With probability 1/MeanRun a taken branch redirects it to a
//     target drawn from a move-to-front stack of branch targets with
//     Zipf(ITheta) stack-distance reuse; occasionally the branch opens a
//     brand-new target until the static code footprint (CodeBytes) is
//     covered. This yields the high spatial locality and footprint-bound
//     capacity behaviour of real instruction streams.
//
//   - Reused data: a move-to-front stack of heap lines with
//     Zipf(DTheta) stack-distance reuse. New lines are scattered through
//     a sparse address space by multiplicative hashing, which reproduces
//     the uneven set pressure (conflict misses) of real heaps — the
//     behaviour that set-associativity and exclusive caching exploit.
//
//   - Streaming data: a fraction of data references walk long arrays
//     sequentially and re-walk them when they wrap, the tomcatv-style
//     pattern whose miss rate barely improves with cache size.
type GenParams struct {
	// Name labels the workload.
	Name string
	// Seed makes the stream deterministic; each workload uses its own.
	Seed uint64

	// InstrFrac is the fraction of all references that are instruction
	// fetches (Table 1: instr refs / total refs). The machine model
	// issues at most one data reference per instruction (§2.1), so the
	// fraction must be at least 0.5 — every Table-1 workload satisfies
	// this comfortably.
	InstrFrac float64

	// CodeBytes is the static code footprint.
	CodeBytes int64
	// MeanRun is the mean number of sequential instructions between
	// taken branches.
	MeanRun float64
	// ITheta is the Zipf exponent for branch-target reuse.
	ITheta float64

	// DataLines is the heap footprint in 16-byte lines.
	DataLines int
	// DTheta is the Zipf exponent for heap-line reuse.
	DTheta float64
	// DNewFrac is the probability that a (non-streaming) data reference
	// touches a heap line never referenced before (ongoing compulsory
	// traffic from fresh allocations and new input).
	DNewFrac float64

	// StreamFrac is the fraction of data references that belong to
	// sequential array walks.
	StreamFrac float64
	// Streams is the number of concurrent array walks.
	Streams int
	// StreamLines is the length of each walked array in lines.
	StreamLines int

	// WriteFrac is the fraction of data references that are stores
	// (emitted as Kind Write). It only relabels references — addresses
	// and ordering are untouched, so hit/miss behaviour matches the
	// paper's writes-as-reads model while the write-back traffic
	// extension can track dirty lines. Zero emits loads only.
	WriteFrac float64
}

// Validate reports whether the parameters describe a usable generator.
func (p GenParams) Validate() error {
	switch {
	case p.InstrFrac < 0.5 || p.InstrFrac > 1:
		return fmt.Errorf("trace: InstrFrac %v outside [0.5,1] (at most one data ref per instruction)", p.InstrFrac)
	case p.CodeBytes < lineBytes:
		return fmt.Errorf("trace: CodeBytes %d below one line", p.CodeBytes)
	case p.MeanRun < 1:
		return fmt.Errorf("trace: MeanRun %v below 1", p.MeanRun)
	case p.DataLines < 1:
		return fmt.Errorf("trace: DataLines %d below 1", p.DataLines)
	case p.StreamFrac < 0 || p.StreamFrac > 1:
		return fmt.Errorf("trace: StreamFrac %v outside [0,1]", p.StreamFrac)
	case p.StreamFrac > 0 && (p.Streams < 1 || p.StreamLines < 1):
		return fmt.Errorf("trace: StreamFrac %v requires Streams and StreamLines", p.StreamFrac)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("trace: WriteFrac %v outside [0,1]", p.WriteFrac)
	}
	return nil
}

const (
	lineBytes = 16
	instrSize = 4 // one RISC instruction

	codeBase   = 0x0040_0000
	heapBase   = 0x1000_0000
	streamBase = 0x4000_0000

	// targetSpacing is the alignment of distinct branch targets within
	// the code region.
	targetSpacing = 32
	// heapSpread scatters heap lines over this multiple of the footprint
	// so that set pressure is uneven, as in real heaps.
	heapSpread = 4
)

// Generator produces an endless deterministic reference stream from
// GenParams. Wrap it in Limit (or use Generate) for a finite trace.
type Generator struct {
	p   GenParams
	rng *xorshift64
	// wrng decides store-vs-load labels independently of the main rng,
	// so enabling WriteFrac leaves the address stream byte-identical.
	wrng *xorshift64

	// Instruction state.
	pc         uint64
	runLeft    int
	targets    mtfStack
	nextTarget int
	maxTargets int
	iZipf      *zipfSampler
	branchProb float64

	// Data state.
	heap      mtfStack
	nextHeap  int
	heapSpace uint64
	dZipf     *zipfSampler

	streamPos  []int
	nextStream int

	// One instruction fetch may queue a data reference to follow it.
	pending    Ref
	hasPending bool
	dataProb   float64
}

// NewGenerator builds a generator; it panics on invalid parameters (use
// GenParams.Validate for untrusted input).
func NewGenerator(p GenParams) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	maxTargets := int(p.CodeBytes / targetSpacing)
	if maxTargets < 1 {
		maxTargets = 1
	}
	g := &Generator{
		p:          p,
		rng:        newXorshift(p.Seed),
		wrng:       newXorshift(p.Seed ^ 0x57524954455F5251), // "WRITE_RQ"
		pc:         codeBase,
		maxTargets: maxTargets,
		iZipf:      newZipfSampler(maxTargets, p.ITheta),
		dZipf:      newZipfSampler(p.DataLines, p.DTheta),
		branchProb: 1 / p.MeanRun,
		heapSpace:  uint64(p.DataLines) * heapSpread,
		dataProb:   (1 - p.InstrFrac) / p.InstrFrac,
	}
	if p.StreamFrac > 0 {
		g.streamPos = make([]int, p.Streams)
	}
	// Start in steady state: the full code and heap footprints are
	// already in the reuse stacks, so deep-capacity reuse appears from
	// the first reference, as it would in a warmed-up trace window.
	g.targets.prewarm(maxTargets, func(i int) uint64 { return g.targetAddr(i) })
	g.nextTarget = maxTargets
	g.heap.prewarm(p.DataLines, g.heapLine)
	g.nextHeap = p.DataLines
	return g
}

// Params returns the generator's parameters.
func (g *Generator) Params() GenParams { return g.p }

// Next produces the next reference. The stream never ends.
func (g *Generator) Next() (Ref, bool) {
	if g.hasPending {
		g.hasPending = false
		return g.pending, true
	}
	r := Ref{Kind: Instr, Addr: g.instrFetch()}
	if g.rng.float64() < g.dataProb {
		kind := Data
		if g.p.WriteFrac > 0 && g.wrng.float64() < g.p.WriteFrac {
			kind = Write
		}
		g.pending = Ref{Kind: kind, Addr: g.dataRef()}
		g.hasPending = true
	}
	return r, true
}

// targetAddr maps target index i to its code address.
func (g *Generator) targetAddr(i int) uint64 {
	return codeBase + uint64(i)*targetSpacing
}

// instrFetch advances the instruction stream by one fetch.
func (g *Generator) instrFetch() uint64 {
	if g.runLeft <= 0 {
		// Taken branch: jump to a target drawn from the reuse stack.
		d := g.iZipf.sample(g.rng.float64())
		if d > g.targets.depth() {
			d = g.targets.depth()
		}
		g.pc = g.targets.refDepth(d)
		g.runLeft = g.geometricRun()
	}
	a := g.pc
	g.pc += instrSize
	if g.pc >= codeBase+uint64(g.p.CodeBytes) {
		g.pc = codeBase
	}
	g.runLeft--
	return a
}

// geometricRun draws a run length with mean MeanRun (at least 1).
func (g *Generator) geometricRun() int {
	n := 1
	for g.rng.float64() >= g.branchProb {
		n++
		if float64(n) > 8*g.p.MeanRun { // cap pathological runs
			break
		}
	}
	return n
}

// heapLine maps heap-line index i to a scattered line address.
// Multiplicative hashing by a large odd constant spreads indices over
// heapSpread times the footprint, so cache sets see uneven pressure.
func (g *Generator) heapLine(i int) uint64 {
	h := (uint64(i) * 0x9E3779B97F4A7C15) % g.heapSpace
	return heapBase/lineBytes + h
}

// dataRef produces one data reference (returned as a byte address).
func (g *Generator) dataRef() uint64 {
	if g.p.StreamFrac > 0 && g.rng.float64() < g.p.StreamFrac {
		return g.streamRef()
	}
	var line uint64
	if g.rng.float64() < g.p.DNewFrac {
		// Ongoing compulsory traffic: the program keeps touching lines
		// it has never referenced before (fresh allocations, new input).
		line = g.heapLine(g.nextHeap)
		g.nextHeap++
		g.heap.push(line)
	} else {
		d := g.dZipf.sample(g.rng.float64())
		if d > g.heap.depth() {
			d = g.heap.depth()
		}
		line = g.heap.refDepth(d)
	}
	return line*lineBytes + uint64(g.rng.intn(4))*4
}

// streamRef advances one of the round-robin array walks by one element
// (8 bytes, two references per line) and returns the address touched.
func (g *Generator) streamRef() uint64 {
	s := g.nextStream
	g.nextStream = (g.nextStream + 1) % g.p.Streams
	pos := g.streamPos[s]
	g.streamPos[s] = (pos + 1) % (g.p.StreamLines * 2)
	// Stream regions are separated by a prime line offset so that
	// concurrent lockstep walks do not alias to the same cache set at
	// power-of-two cache sizes (real array bases are not so pathological).
	base := uint64(streamBase) + uint64(s)*uint64(g.p.StreamLines+13)*lineBytes
	return base + uint64(pos)*8
}

// Generate returns a finite stream of n references from params.
func Generate(p GenParams, n uint64) Stream {
	return NewLimit(NewGenerator(p), n)
}
