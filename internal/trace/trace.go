// Package trace provides the memory-reference substrate for the study:
// reference types, reference streams, synthetic SPEC89-like workload
// generators, and trace file I/O.
//
// The original study used real address traces captured with the WRL
// tracing system (Borg et al., WRL 89/14) on a DECStation 5000. Those
// traces are not available, so this package substitutes deterministic
// synthetic generators whose reuse behaviour (LRU stack-distance
// distribution, sequential instruction runs, streaming data walks) is
// calibrated per workload against the miss rates the paper quotes. See
// DESIGN.md §2 for the substitution argument.
package trace

import "fmt"

// Kind distinguishes instruction fetches from data references. The study
// models writes as reads for hit/miss purposes (write-allocate,
// fetch-on-write, §2.2); the Write kind exists so the write-back traffic
// extension can track dirty lines, and behaves exactly like Data
// everywhere else.
type Kind uint8

const (
	// Instr is an instruction fetch.
	Instr Kind = iota
	// Data is a data load.
	Data
	// Write is a data store (allocates like a load, dirties the line).
	Write
)

// String names the reference kind.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Data:
		return "data"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsData reports whether the reference is a data load or store.
func (k Kind) IsData() bool { return k == Data || k == Write }

// Ref is one memory reference.
type Ref struct {
	Kind Kind
	Addr uint64
}

// Stream produces references one at a time. Next reports false when the
// stream is exhausted.
type Stream interface {
	Next() (Ref, bool)
}

// SliceStream replays a fixed slice of references.
type SliceStream struct {
	refs []Ref
	pos  int
}

// NewSliceStream wraps refs in a Stream.
func NewSliceStream(refs []Ref) *SliceStream { return &SliceStream{refs: refs} }

// Next returns the next reference in the slice.
func (s *SliceStream) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Limit wraps a stream and stops it after n references.
type Limit struct {
	inner Stream
	left  uint64
}

// NewLimit returns a stream producing at most n references from inner.
func NewLimit(inner Stream, n uint64) *Limit { return &Limit{inner: inner, left: n} }

// Next returns the next reference until the limit is reached.
func (l *Limit) Next() (Ref, bool) {
	if l.left == 0 {
		return Ref{}, false
	}
	r, ok := l.inner.Next()
	if !ok {
		l.left = 0
		return Ref{}, false
	}
	l.left--
	return r, true
}

// Collect drains up to max references from s into a slice. A max of 0
// collects the whole stream.
func Collect(s Stream, max uint64) []Ref {
	var out []Ref
	for {
		if max > 0 && uint64(len(out)) >= max {
			return out
		}
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Count tallies instruction and data references in a stream, draining
// it. Writes count as data references, as in the paper's Table 1.
func Count(s Stream) (instr, data uint64) {
	for {
		r, ok := s.Next()
		if !ok {
			return instr, data
		}
		if r.Kind == Instr {
			instr++
		} else {
			data++
		}
	}
}

// CountKinds tallies each reference kind separately, draining the stream.
func CountKinds(s Stream) (instr, loads, stores uint64) {
	for {
		r, ok := s.Next()
		if !ok {
			return instr, loads, stores
		}
		switch r.Kind {
		case Instr:
			instr++
		case Data:
			loads++
		case Write:
			stores++
		}
	}
}

// Skip discards the first n references of a stream — the standard tool
// for excluding cache warm-up from steady-state measurements.
type Skip struct {
	inner Stream
	left  uint64
}

// NewSkip returns a stream that silently consumes the first n references
// of inner before yielding the rest.
func NewSkip(inner Stream, n uint64) *Skip {
	return &Skip{inner: inner, left: n}
}

// Next discards pending skips, then forwards from the inner stream.
func (s *Skip) Next() (Ref, bool) {
	for s.left > 0 {
		if _, ok := s.inner.Next(); !ok {
			s.left = 0
			return Ref{}, false
		}
		s.left--
	}
	return s.inner.Next()
}

// Tee forwards a stream while calling observe on every reference that
// passes through — profiling a trace while simulating it, for example.
type Tee struct {
	inner   Stream
	observe func(Ref)
}

// NewTee wraps inner; observe must not retain the Ref.
func NewTee(inner Stream, observe func(Ref)) *Tee {
	return &Tee{inner: inner, observe: observe}
}

// Next forwards the next reference after observing it.
func (t *Tee) Next() (Ref, bool) {
	r, ok := t.inner.Next()
	if ok {
		t.observe(r)
	}
	return r, ok
}
