// Package chaos is a deterministic, seed-driven fault injector for
// exercising the recovery paths of the sweep evaluator and the durable
// result store: panics, delays, injected errors (including context
// cancellation), and short/failed/corrupted I/O, fired at named sites.
//
// The package follows the nil-safety contract of internal/obs: every
// method on a nil *Injector is a no-op, so production code calls the
// hooks unconditionally and pays only a nil check when chaos is off.
// All randomness comes from the seed given to New, so a failing test
// reproduces exactly by re-running with the same seed and rules.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error value injected faults wrap when a rule does
// not name its own error. Tests match failures with
// errors.Is(err, chaos.ErrInjected).
var ErrInjected = errors.New("chaos: injected fault")

// Rule describes one fault bound to a site. A rule becomes eligible
// after the site's first After hits, fires at most Times times (0 =
// unlimited), and — when P is in (0, 1) — fires on an eligible hit with
// probability P drawn from the injector's seeded source. The fault
// itself is the union of the effect fields; Delay composes with the
// others (sleep first, then panic / error / I/O damage).
type Rule struct {
	// Site names the injection point, e.g. "sweep.evaluate".
	Site string
	// After skips the first After hits of the site.
	After int
	// Times caps how often the rule fires (0 = every eligible hit).
	Times int
	// P is the per-hit firing probability; outside (0, 1) the rule
	// always fires once eligible.
	P float64

	// Delay sleeps before applying the rest of the fault.
	Delay time.Duration
	// Panic, when non-nil, panics with this value at Hit sites.
	Panic any
	// Err is returned from Hit (or from a wrapped Write) when the rule
	// fires; nil defaults to ErrInjected unless another effect field
	// (Delay alone, Corrupt, Short) carries the fault. Use
	// context.Canceled or context.DeadlineExceeded to impersonate
	// cancellations.
	Err error
	// Corrupt flips one byte of a wrapped Write, which still reports
	// success — simulating silent media corruption a checksum must
	// catch.
	Corrupt bool
	// Short makes a wrapped Write persist only a prefix of the buffer
	// and then fail — simulating a torn write cut off by a crash.
	Short bool

	fired int
}

// Injector fires configured rules at named sites. Nil is a valid,
// inert injector; New builds a live one.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule
	hits  map[string]int
	fires map[string]int
}

// New builds an injector whose probabilistic decisions and corruption
// offsets all derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]int),
		fires: make(map[string]int),
	}
}

// Install adds a rule. No-op on a nil injector.
func (in *Injector) Install(r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &r)
}

// Hits reports how many times the site was reached (0 on nil).
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired reports how many faults the site has injected (0 on nil).
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[site]
}

// match picks the first rule that fires for this hit of site, updating
// the hit and fire accounting. It returns nil when the site passes
// clean.
func (in *Injector) match(site string) *Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.hits[site]
	in.hits[site] = n + 1
	for _, r := range in.rules {
		if r.Site != site || n < r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		if r.P > 0 && r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		r.fired++
		in.fires[site]++
		return r
	}
	return nil
}

// Hit fires any due fault at site: it sleeps the rule's Delay, panics
// with the rule's Panic value, or returns the rule's error (ErrInjected
// when the rule names none). A clean pass — and every call on a nil
// injector — returns nil.
func (in *Injector) Hit(site string) error {
	r := in.match(site)
	if r == nil {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic != nil {
		panic(r.Panic)
	}
	if r.Err != nil {
		return r.Err
	}
	if r.Delay > 0 && !r.Corrupt && !r.Short {
		// A pure-delay rule injects latency, not failure.
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// Writer wraps w so rules installed for site can fail, shorten, or
// corrupt writes. On a nil injector it returns w unchanged.
func (in *Injector) Writer(site string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, site: site, w: w}
}

type faultWriter struct {
	in   *Injector
	site string
	w    io.Writer
}

// Write applies at most one fault per call: a Short rule persists only
// the first half of p and fails; a Corrupt rule flips one byte but
// succeeds; an error rule fails before writing anything; a pure delay
// sleeps and writes through.
func (fw *faultWriter) Write(p []byte) (int, error) {
	r := fw.in.match(fw.site)
	if r == nil {
		return fw.w.Write(p)
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic != nil {
		panic(r.Panic)
	}
	switch {
	case r.Short:
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: torn write at %s", ErrInjected, fw.site)
	case r.Corrupt:
		if len(p) == 0 {
			return 0, nil
		}
		q := make([]byte, len(p))
		copy(q, p)
		// Never flip a trailing record delimiter: corrupting the framing
		// byte would merge two records, and media corruption of payload
		// bytes is the case a per-record checksum exists to catch.
		span := len(q)
		if span > 1 && q[span-1] == '\n' {
			span--
		}
		fw.in.mu.Lock()
		i := fw.in.rng.Intn(span)
		fw.in.mu.Unlock()
		q[i] ^= 0xff
		return fw.w.Write(q)
	case r.Err != nil:
		return 0, r.Err
	case r.Delay > 0:
		return fw.w.Write(p)
	default:
		return 0, fmt.Errorf("%w at %s", ErrInjected, fw.site)
	}
}
