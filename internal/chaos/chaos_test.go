package chaos

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestNilInjectorIsInert: the obs nil-safety contract — every method on
// a nil injector is a usable no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.Install(Rule{Site: "x", Panic: "boom"})
	if err := in.Hit("x"); err != nil {
		t.Fatalf("nil injector Hit = %v", err)
	}
	if in.Hits("x") != 0 || in.Fired("x") != 0 {
		t.Fatal("nil injector counted hits")
	}
	var buf bytes.Buffer
	w := in.Writer("x", &buf)
	if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("nil injector Writer = %d, %v", n, err)
	}
	if buf.String() != "ok" {
		t.Fatalf("nil injector altered the write: %q", buf.String())
	}
}

// TestHitErrorAfterTimes: After skips early hits, Times caps firings,
// and the default error wraps ErrInjected.
func TestHitErrorAfterTimes(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "eval", After: 2, Times: 3})
	var failures int
	for i := 0; i < 10; i++ {
		if err := in.Hit("eval"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			if i < 2 {
				t.Fatalf("rule fired on hit %d, before After=2", i)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("rule fired %d times, want 3", failures)
	}
	if in.Hits("eval") != 10 || in.Fired("eval") != 3 {
		t.Fatalf("accounting = %d hits / %d fired, want 10/3", in.Hits("eval"), in.Fired("eval"))
	}
}

// TestHitPanicAndCancellation: panic faults panic, and error faults can
// impersonate context cancellation for errors.Is dispatch.
func TestHitPanicAndCancellation(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "panic", Panic: "chaos-boom"})
	in.Install(Rule{Site: "cancel", Err: context.Canceled})
	func() {
		defer func() {
			if r := recover(); r != "chaos-boom" {
				t.Fatalf("recovered %v, want chaos-boom", r)
			}
		}()
		in.Hit("panic") //nolint:errcheck // the panic is the result
		t.Fatal("panic rule did not panic")
	}()
	if err := in.Hit("cancel"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault = %v, want context.Canceled", err)
	}
}

// TestHitDelay: a pure-delay rule injects latency but not failure.
func TestHitDelay(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "slow", Delay: 20 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("delay rule returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("hit returned after %v, want >= 20ms", d)
	}
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
}

// TestWriterShort: a Short rule persists a prefix and fails — the torn
// write a crash leaves behind.
func TestWriterShort(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "w", Short: true, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	payload := []byte("0123456789")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Fatalf("short write persisted %d bytes %q, want the 5-byte prefix", n, buf.String())
	}
	if n, err := w.Write(payload); n != 10 || err != nil {
		t.Fatalf("write after rule exhausted = %d, %v", n, err)
	}
}

// TestWriterCorrupt: a Corrupt rule flips exactly one non-delimiter
// byte and reports success.
func TestWriterCorrupt(t *testing.T) {
	in := New(42)
	in.Install(Rule{Site: "w", Corrupt: true, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	payload := []byte(`{"k":"v"}` + "\n")
	n, err := w.Write(payload)
	if n != len(payload) || err != nil {
		t.Fatalf("corrupt write = %d, %v, want full success", n, err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, payload) {
		t.Fatal("corrupt rule left the payload intact")
	}
	if got[len(got)-1] != '\n' {
		t.Fatal("corrupt rule flipped the record delimiter")
	}
	diff := 0
	for i := range payload {
		if payload[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt rule flipped %d bytes, want exactly 1", diff)
	}
}

// TestWriterErr: an error rule fails the write without persisting
// anything.
func TestWriterErr(t *testing.T) {
	in := New(1)
	werr := errors.New("disk on fire")
	in.Install(Rule{Site: "w", Err: werr, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	if n, err := w.Write([]byte("data")); n != 0 || !errors.Is(err, werr) {
		t.Fatalf("error write = %d, %v, want 0 bytes and the rule error", n, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed write persisted %q", buf.String())
	}
}

// TestDeterminism: the same seed and rules fire on the same hits.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		in := New(7)
		in.Install(Rule{Site: "p", P: 0.3})
		var fired []int
		for i := 0; i < 64; i++ {
			if in.Hit("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("P=0.3 rule fired %d/64 times; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs fired differently: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two seeded runs fired differently: %v vs %v", a, b)
		}
	}
}
