package chaos

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorIsInert: the obs nil-safety contract — every method on
// a nil injector is a usable no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.Install(Rule{Site: "x", Panic: "boom"})
	if err := in.Hit("x"); err != nil {
		t.Fatalf("nil injector Hit = %v", err)
	}
	if in.Hits("x") != 0 || in.Fired("x") != 0 {
		t.Fatal("nil injector counted hits")
	}
	var buf bytes.Buffer
	w := in.Writer("x", &buf)
	if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("nil injector Writer = %d, %v", n, err)
	}
	if buf.String() != "ok" {
		t.Fatalf("nil injector altered the write: %q", buf.String())
	}
}

// TestHitErrorAfterTimes: After skips early hits, Times caps firings,
// and the default error wraps ErrInjected.
func TestHitErrorAfterTimes(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "eval", After: 2, Times: 3})
	var failures int
	for i := 0; i < 10; i++ {
		if err := in.Hit("eval"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			if i < 2 {
				t.Fatalf("rule fired on hit %d, before After=2", i)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("rule fired %d times, want 3", failures)
	}
	if in.Hits("eval") != 10 || in.Fired("eval") != 3 {
		t.Fatalf("accounting = %d hits / %d fired, want 10/3", in.Hits("eval"), in.Fired("eval"))
	}
}

// TestHitPanicAndCancellation: panic faults panic, and error faults can
// impersonate context cancellation for errors.Is dispatch.
func TestHitPanicAndCancellation(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "panic", Panic: "chaos-boom"})
	in.Install(Rule{Site: "cancel", Err: context.Canceled})
	func() {
		defer func() {
			if r := recover(); r != "chaos-boom" {
				t.Fatalf("recovered %v, want chaos-boom", r)
			}
		}()
		in.Hit("panic") //nolint:errcheck // the panic is the result
		t.Fatal("panic rule did not panic")
	}()
	if err := in.Hit("cancel"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault = %v, want context.Canceled", err)
	}
}

// TestHitDelay: a pure-delay rule injects latency but not failure.
func TestHitDelay(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "slow", Delay: 20 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("delay rule returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("hit returned after %v, want >= 20ms", d)
	}
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
}

// TestWriterShort: a Short rule persists a prefix and fails — the torn
// write a crash leaves behind.
func TestWriterShort(t *testing.T) {
	in := New(1)
	in.Install(Rule{Site: "w", Short: true, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	payload := []byte("0123456789")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Fatalf("short write persisted %d bytes %q, want the 5-byte prefix", n, buf.String())
	}
	if n, err := w.Write(payload); n != 10 || err != nil {
		t.Fatalf("write after rule exhausted = %d, %v", n, err)
	}
}

// TestWriterCorrupt: a Corrupt rule flips exactly one non-delimiter
// byte and reports success.
func TestWriterCorrupt(t *testing.T) {
	in := New(42)
	in.Install(Rule{Site: "w", Corrupt: true, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	payload := []byte(`{"k":"v"}` + "\n")
	n, err := w.Write(payload)
	if n != len(payload) || err != nil {
		t.Fatalf("corrupt write = %d, %v, want full success", n, err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, payload) {
		t.Fatal("corrupt rule left the payload intact")
	}
	if got[len(got)-1] != '\n' {
		t.Fatal("corrupt rule flipped the record delimiter")
	}
	diff := 0
	for i := range payload {
		if payload[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt rule flipped %d bytes, want exactly 1", diff)
	}
}

// TestWriterErr: an error rule fails the write without persisting
// anything.
func TestWriterErr(t *testing.T) {
	in := New(1)
	werr := errors.New("disk on fire")
	in.Install(Rule{Site: "w", Err: werr, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	if n, err := w.Write([]byte("data")); n != 0 || !errors.Is(err, werr) {
		t.Fatalf("error write = %d, %v, want 0 bytes and the rule error", n, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed write persisted %q", buf.String())
	}
}

// TestDeterminism: the same seed and rules fire on the same hits.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		in := New(7)
		in.Install(Rule{Site: "p", P: 0.3})
		var fired []int
		for i := 0; i < 64; i++ {
			if in.Hit("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("P=0.3 rule fired %d/64 times; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs fired differently: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two seeded runs fired differently: %v vs %v", a, b)
		}
	}
}

// TestConcurrentHitsKeepExactOrdinals: many goroutines hammering one
// site concurrently must still observe race-free ordinal accounting —
// exactly Hits = G×H total hits, exactly Times firings for an
// After/Times rule, and never more. This is the contract the cluster
// relies on when parallel lease loops share an injector; run under
// -race it also proves the locking.
func TestConcurrentHitsKeepExactOrdinals(t *testing.T) {
	const (
		goroutines = 8
		hitsEach   = 200
		after      = 37
		times      = 53
	)
	in := New(3)
	in.Install(Rule{Site: "c", After: after, Times: times})

	var wg sync.WaitGroup
	errs := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < hitsEach; i++ {
				if in.Hit("c") != nil {
					n++
				}
			}
			errs <- n
		}()
	}
	wg.Wait()
	close(errs)

	total := 0
	for n := range errs {
		total += n
	}
	if got := in.Hits("c"); got != goroutines*hitsEach {
		t.Fatalf("Hits = %d, want %d", got, goroutines*hitsEach)
	}
	if got := in.Fired("c"); got != times {
		t.Fatalf("Fired = %d, want exactly %d", got, times)
	}
	if total != times {
		t.Fatalf("goroutines saw %d injected errors, want exactly %d", total, times)
	}
}

// TestConcurrentRulesSequenceWithoutOverlap: two rules on the same site
// with adjacent After windows must partition the hit sequence exactly —
// rule one fires its Times, then rule two — even when the hits arrive
// from concurrent goroutines.
func TestConcurrentRulesSequenceWithoutOverlap(t *testing.T) {
	const (
		goroutines = 6
		hitsEach   = 100
	)
	errA := errors.New("phase-a")
	errB := errors.New("phase-b")
	in := New(5)
	in.Install(Rule{Site: "s", After: 0, Times: 10, Err: errA})
	in.Install(Rule{Site: "s", After: 10, Times: 10, Err: errB})

	var wg sync.WaitGroup
	counts := make(chan [2]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c [2]int
			for i := 0; i < hitsEach; i++ {
				switch err := in.Hit("s"); {
				case errors.Is(err, errA):
					c[0]++
				case errors.Is(err, errB):
					c[1]++
				case err != nil:
					t.Errorf("unexpected error: %v", err)
				}
			}
			counts <- c
		}()
	}
	wg.Wait()
	close(counts)

	var a, b int
	for c := range counts {
		a += c[0]
		b += c[1]
	}
	if a != 10 || b != 10 {
		t.Fatalf("phase firings = %d/%d, want exactly 10/10", a, b)
	}
	if got := in.Fired("s"); got != 20 {
		t.Fatalf("Fired = %d, want 20", got)
	}
	if got := in.Hits("s"); got != goroutines*hitsEach {
		t.Fatalf("Hits = %d, want %d", got, goroutines*hitsEach)
	}
}
