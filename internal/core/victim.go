package core

import (
	"fmt"

	"twolevel/internal/cache"
)

// NewVictimCacheSystem builds the §8 degenerate case: split direct-mapped
// L1 caches backed by a small fully-associative victim buffer holding
// victimLines lines, realized as an exclusive "L2" (§8: "for y < x, the
// configuration becomes a shared direct-mapped victim cache" — with full
// associativity this is exactly Jouppi's 1990 victim cache, shared
// between the instruction and data caches).
//
// Lines evicted from either L1 drop into the buffer; an L1 miss that hits
// the buffer swaps the line back without an off-chip access. lineSize 0
// defaults to the study's 16 bytes.
func NewVictimCacheSystem(l1Size int64, victimLines, lineSize int) (*System, error) {
	if lineSize == 0 {
		lineSize = 16
	}
	if victimLines < 1 {
		return nil, fmt.Errorf("core: victim buffer needs at least 1 line, got %d", victimLines)
	}
	cfg := Config{
		L1I: cache.Config{Size: l1Size, LineSize: lineSize, Assoc: 1},
		L1D: cache.Config{Size: l1Size, LineSize: lineSize, Assoc: 1},
		L2: cache.Config{
			Size:     int64(victimLines * lineSize),
			LineSize: lineSize,
			Assoc:    victimLines, // fully associative
			Policy:   cache.LRU,
		},
		Policy: Exclusive,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewSystem(cfg), nil
}
