package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

func boardConfig() (Config, cache.Config) {
	onChip := Config{
		L1I: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L2:  cache.Config{Size: 16 * line, LineSize: line, Assoc: 1},
	}
	board := cache.Config{Size: 256 * line, LineSize: line, Assoc: 4, Policy: cache.LRU}
	return onChip, board
}

func TestNewBoardSystemValidation(t *testing.T) {
	onChip, board := boardConfig()
	if _, err := NewBoardSystem(onChip, board); err != nil {
		t.Fatalf("valid board system rejected: %v", err)
	}
	bad := board
	bad.LineSize = 32
	bad.Size = 256 * 32
	if _, err := NewBoardSystem(onChip, bad); err == nil {
		t.Error("line-size mismatch accepted")
	}
	small := board
	small.Size = 8 * line
	small.Assoc = 1
	if _, err := NewBoardSystem(onChip, small); err == nil {
		t.Error("board smaller than the on-chip L2 accepted")
	}
	if _, err := NewBoardSystem(Config{}, board); err == nil {
		t.Error("invalid on-chip config accepted")
	}
	if _, err := NewBoardSystem(onChip, cache.Config{Size: 3}); err == nil {
		t.Error("invalid board config accepted")
	}
}

func TestBoardSplitsOffChipFetches(t *testing.T) {
	onChip, board := boardConfig()
	b, err := NewBoardSystem(onChip, board)
	if err != nil {
		t.Fatal(err)
	}
	// Two lines conflicting in both on-chip levels thrash off-chip; the
	// board cache absorbs everything after its two cold misses.
	a := uint64(13 * line)
	e := a + 16*line
	for i := 0; i < 50; i++ {
		b.Access(data(a))
		b.Access(data(e))
	}
	st, bs := b.Stats(), b.BoardStats()
	if got := bs.BoardHits + bs.BoardMisses; got != st.OffChipFetches {
		t.Fatalf("board counters %d do not partition the %d off-chip fetches", got, st.OffChipFetches)
	}
	if bs.BoardMisses != 2 {
		t.Errorf("BoardMisses = %d, want 2 (cold only)", bs.BoardMisses)
	}
	if bs.BoardHits == 0 {
		t.Error("board cache absorbed nothing")
	}
	if mr := b.MemoryMissRate(); mr >= st.GlobalMissRate() {
		t.Errorf("memory miss rate %.4f not below global %.4f", mr, st.GlobalMissRate())
	}
}

func TestBoardRunAndAccessors(t *testing.T) {
	onChip, board := boardConfig()
	b, err := NewBoardSystem(onChip, board)
	if err != nil {
		t.Fatal(err)
	}
	refs := synthRefs(5000)
	st, bs := b.Run(trace.NewSliceStream(refs))
	if st.Refs() != 5000 {
		t.Errorf("Refs() = %d", st.Refs())
	}
	if bs.BoardHits+bs.BoardMisses != st.OffChipFetches {
		t.Error("board counters do not partition off-chip fetches")
	}
	if b.OnChip() == nil || b.Board() == nil {
		t.Error("accessors nil")
	}
	if b.Board().Stats().Accesses != st.OffChipFetches {
		t.Error("board cache access count mismatch")
	}
}

func TestBoardEmptyMemoryMissRate(t *testing.T) {
	onChip, board := boardConfig()
	b, err := NewBoardSystem(onChip, board)
	if err != nil {
		t.Fatal(err)
	}
	if b.MemoryMissRate() != 0 {
		t.Error("empty system memory miss rate non-zero")
	}
}
