package core

import (
	"fmt"

	"twolevel/internal/cache"
	"twolevel/internal/obs"
	"twolevel/internal/trace"
)

// StreamBuffer implements the other half of the paper's reference [4]
// (Jouppi 1990, "Improving Direct-Mapped Cache Performance by the
// Addition of a Small Fully-Associative Cache and Prefetch Buffers"): a
// FIFO of sequentially-prefetched lines placed behind a direct-mapped
// cache. On a cache miss the buffer head is checked; a head hit supplies
// the line and shifts the FIFO, launching a prefetch of the next
// sequential line. A miss restarts the buffer at the missing line + 1.
//
// The model is occupancy-only, like the rest of the study: prefetches
// complete instantly and their bandwidth cost is reported in Prefetches,
// not charged in time.
type StreamBuffer struct {
	entries []cache.LineAddr
	valid   []bool
	next    cache.LineAddr // next line to prefetch

	// Hits counts misses served by the buffer head; Restarts counts
	// buffer flushes on a non-head miss; Prefetches counts lines fetched
	// into the buffer.
	Hits       uint64
	Restarts   uint64
	Prefetches uint64

	// mFills is the registry counter for prefetch fills (nil when
	// uninstrumented; see StreamBufferSystem.Instrument).
	mFills *obs.Counter
}

// NewStreamBuffer builds a buffer of depth entries (Jouppi used 4).
func NewStreamBuffer(depth int) (*StreamBuffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("core: stream buffer depth %d must be >= 1", depth)
	}
	return &StreamBuffer{
		entries: make([]cache.LineAddr, depth),
		valid:   make([]bool, depth),
	}, nil
}

// Lookup consumes a cache miss for line l: true means the buffer head
// held the line (it is shifted out and a new prefetch fills the tail);
// false restarts the buffer at l+1.
func (b *StreamBuffer) Lookup(l cache.LineAddr) bool {
	if b.valid[0] && b.entries[0] == l {
		b.Hits++
		copy(b.entries, b.entries[1:])
		copy(b.valid, b.valid[1:])
		last := len(b.entries) - 1
		b.entries[last] = b.next
		b.valid[last] = true
		b.next++
		b.Prefetches++
		b.mFills.Inc()
		return true
	}
	// Restart: begin prefetching the successors of the missing line.
	b.Restarts++
	for i := range b.entries {
		b.entries[i] = l + 1 + cache.LineAddr(i)
		b.valid[i] = true
		b.Prefetches++
		b.mFills.Inc()
	}
	b.next = l + 1 + cache.LineAddr(len(b.entries))
	return false
}

// streamLookup is the common surface of single and multi-way buffers.
type streamLookup interface {
	Lookup(cache.LineAddr) bool
}

// StreamBufferSystem pairs a hierarchy with per-L1 stream buffers: a
// single buffer on the instruction cache (code is one stream) and a
// multi-way set on the data cache (interleaved array walks each need
// their own buffer), exactly [4]'s arrangement.
type StreamBufferSystem struct {
	sys  *System
	ibuf *StreamBuffer
	dbuf *StreamBufferSet // nil when data prefetching is off
}

// NewStreamBufferSystem builds the wrapper. depth is the per-buffer
// depth; dataWays is the number of data-side buffers (0 disables data
// prefetching; Jouppi used four).
func NewStreamBufferSystem(cfg Config, depth, dataWays int) (*StreamBufferSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ibuf, err := NewStreamBuffer(depth)
	if err != nil {
		return nil, err
	}
	s := &StreamBufferSystem{sys: NewSystem(cfg), ibuf: ibuf}
	if dataWays > 0 {
		if s.dbuf, err = NewStreamBufferSet(dataWays, depth); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Access simulates one reference. A stream-buffer hit fills the L1
// directly (the reference never reaches the L2 or off-chip path), which
// is the [4] arrangement: the buffer sits between the L1 and the next
// level.
func (s *StreamBufferSystem) Access(r trace.Ref) {
	var l1 *cache.Cache
	var buf streamLookup
	switch r.Kind {
	case trace.Instr:
		l1, buf = s.sys.L1I(), s.ibuf
	default:
		l1 = s.sys.L1D()
		if s.dbuf != nil {
			buf = s.dbuf
		}
	}
	if buf == nil || l1.Contains(cache.Addr(r.Addr)) {
		s.sys.Access(r)
		return
	}
	// The L1 will miss; consult the stream buffer first.
	if buf.Lookup(l1.Line(cache.Addr(r.Addr))) {
		// Served by the buffer: fill the L1 without involving L2/memory.
		// Count the reference at the L1 level only.
		if r.Kind == trace.Instr {
			s.sys.st.InstrRefs++
			s.sys.st.L1IMisses++
		} else {
			s.sys.st.DataRefs++
			if r.Kind == trace.Write {
				s.sys.st.WriteRefs++
			}
			s.sys.st.L1DMisses++
		}
		dirty := r.Kind == trace.Write && s.sys.cfg.Writes == WriteBackAllocate
		reqLine := l1.Line(cache.Addr(r.Addr))
		if v := l1.InsertLineState(reqLine, dirty); v.Valid {
			// Victims follow the hierarchy's policy: exclusive systems
			// move them into the L2, others drop (writing back if dirty).
			if s.sys.cfg.Policy == Exclusive && s.sys.l2 != nil {
				s.sys.victimToL2(v, reqLine, false)
			} else {
				s.sys.retireL1Victim(v)
			}
		}
		// Non-exclusive refills populate the L2 too (the buffer's line
		// came through the L2 path in [4]'s arrangement), preserving the
		// conventional/inclusive fill semantics.
		if s.sys.cfg.Policy != Exclusive && s.sys.l2 != nil {
			v2 := s.sys.l2.InsertLine(reqLine)
			if v2.Valid && v2.Dirty {
				s.sys.st.WriteBacksOffChip++
			}
			if s.sys.cfg.Policy == Inclusive && v2.Valid {
				s.sys.backInvalidate(s.sys.l1i, v2.Line)
				s.sys.backInvalidate(s.sys.l1d, v2.Line)
			}
		}
		return
	}
	s.sys.Access(r)
}

// Instrument wires the wrapped hierarchy and every stream buffer into a
// metrics registry; fills from all buffers aggregate into one
// "core_stream_buffer_fills_total" counter. Nil-safe like
// System.Instrument.
func (s *StreamBufferSystem) Instrument(r *obs.Registry) {
	s.sys.Instrument(r)
	fills := r.Counter("core_stream_buffer_fills_total")
	s.ibuf.mFills = fills
	if s.dbuf != nil {
		for _, b := range s.dbuf.bufs {
			b.mFills = fills
		}
	}
}

// Run drains a stream through the system.
func (s *StreamBufferSystem) Run(st trace.Stream) Stats {
	for {
		r, ok := st.Next()
		if !ok {
			return s.sys.Stats()
		}
		s.Access(r)
	}
}

// Stats returns the hierarchy statistics.
func (s *StreamBufferSystem) Stats() Stats { return s.sys.Stats() }

// InstrBuffer exposes the instruction-side buffer counters.
func (s *StreamBufferSystem) InstrBuffer() *StreamBuffer { return s.ibuf }

// DataBuffers exposes the data-side buffer set, or nil.
func (s *StreamBufferSystem) DataBuffers() *StreamBufferSet { return s.dbuf }

// OnChip exposes the wrapped hierarchy.
func (s *StreamBufferSystem) OnChip() *System { return s.sys }

// StreamBufferSet is [4]'s multi-way stream buffer: several buffers in
// parallel, so interleaved streams (tomcatv's seven arrays) each keep
// their own prefetch sequence instead of constantly restarting a single
// buffer. A miss checks every buffer's head; when none matches, the
// least-recently-used buffer is restarted on the new stream.
type StreamBufferSet struct {
	bufs []*StreamBuffer
	lru  []uint64
	tick uint64
}

// NewStreamBufferSet builds ways buffers of the given depth (Jouppi used
// four 4-entry buffers for data caches).
func NewStreamBufferSet(ways, depth int) (*StreamBufferSet, error) {
	if ways < 1 {
		return nil, fmt.Errorf("core: stream buffer set needs >= 1 way, got %d", ways)
	}
	s := &StreamBufferSet{lru: make([]uint64, ways)}
	for i := 0; i < ways; i++ {
		b, err := NewStreamBuffer(depth)
		if err != nil {
			return nil, err
		}
		s.bufs = append(s.bufs, b)
	}
	return s, nil
}

// Lookup consumes a miss for line l: a head match in any buffer serves
// it; otherwise the LRU buffer restarts at l+1.
func (s *StreamBufferSet) Lookup(l cache.LineAddr) bool {
	s.tick++
	for i, b := range s.bufs {
		if b.valid[0] && b.entries[0] == l {
			s.lru[i] = s.tick
			return b.Lookup(l) // head hit: shifts and prefetches
		}
	}
	// Restart the least-recently-used buffer.
	victim := 0
	for i := 1; i < len(s.bufs); i++ {
		if s.lru[i] < s.lru[victim] {
			victim = i
		}
	}
	s.lru[victim] = s.tick
	s.bufs[victim].Lookup(l)
	return false
}

// Hits totals head hits across the set.
func (s *StreamBufferSet) Hits() uint64 {
	var n uint64
	for _, b := range s.bufs {
		n += b.Hits
	}
	return n
}

// Restarts totals buffer restarts across the set.
func (s *StreamBufferSet) Restarts() uint64 {
	var n uint64
	for _, b := range s.bufs {
		n += b.Restarts
	}
	return n
}
