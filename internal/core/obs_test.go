package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/obs"
	"twolevel/internal/trace"
)

func obsTestConfig() Config {
	return Config{
		L1I:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
		L1D:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
		L2:     cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1},
		Policy: Exclusive,
	}
}

// thrashStream alternates two data lines that conflict in both levels,
// plus enough distinct lines to force victim traffic.
func thrashStream(n int) []trace.Ref {
	var refs []trace.Ref
	for i := 0; i < n; i++ {
		refs = append(refs, trace.Ref{Kind: trace.Data, Addr: uint64(i%512) * 16})
	}
	return refs
}

func TestSystemInstrumentMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	sys := NewSystem(obsTestConfig())
	sys.Instrument(reg)
	for _, r := range thrashStream(20000) {
		sys.Access(r)
	}
	st := sys.Stats()
	c := reg.Snapshot().Counters
	if got := c["core_victim_transfers_total"]; got != st.VictimsToL2 {
		t.Errorf("victim transfers counter %d != stats %d", got, st.VictimsToL2)
	}
	if got := c["core_exclusive_swaps_total"]; got != st.Swaps {
		t.Errorf("swaps counter %d != stats %d", got, st.Swaps)
	}
	if got := c["core_offchip_fetches_total"]; got != st.OffChipFetches {
		t.Errorf("off-chip counter %d != stats %d", got, st.OffChipFetches)
	}
	if got := c["cache_l1d_misses_total"]; got != st.L1DMisses {
		t.Errorf("L1D miss counter %d != stats %d", got, st.L1DMisses)
	}
	if st.VictimsToL2 == 0 || st.OffChipFetches == 0 {
		t.Errorf("stream did not exercise the instrumented paths: %+v", st)
	}
}

func TestSystemInstrumentNilRegistry(t *testing.T) {
	sys := NewSystem(obsTestConfig())
	sys.Instrument(nil)
	for _, r := range thrashStream(1000) {
		sys.Access(r)
	}
	if sys.Stats().Refs() != 1000 {
		t.Errorf("refs = %d, want 1000", sys.Stats().Refs())
	}
}

func TestBackInvalidationCounter(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.Policy = Inclusive
	sys := NewSystem(cfg)
	sys.Instrument(reg)
	// A hot data line 0 interleaved with instruction lines 256 and 512:
	// all three share L2 set 0 (256-line direct-mapped L2), so each
	// instruction fill evicts the hot line from L2 while it is still
	// resident in the L1D, forcing a back-invalidation.
	for i := 0; i < 1000; i++ {
		sys.Access(trace.Ref{Kind: trace.Data, Addr: 0})
		sys.Access(trace.Ref{Kind: trace.Instr, Addr: uint64(256+(i%2)*256) * 16})
	}
	st := sys.Stats()
	if got := reg.Snapshot().Counters["core_back_invalidations_total"]; got != st.BackInvalidations {
		t.Errorf("back-invalidation counter %d != stats %d", got, st.BackInvalidations)
	}
	if st.BackInvalidations == 0 {
		t.Error("stream produced no back-invalidations")
	}
}

func TestStreamBufferInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	sbs, err := NewStreamBufferSystem(obsTestConfig(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sbs.Instrument(reg)
	for _, r := range thrashStream(5000) {
		sbs.Access(r)
	}
	wantFills := sbs.InstrBuffer().Prefetches
	for _, b := range sbs.DataBuffers().bufs {
		wantFills += b.Prefetches
	}
	if got := reg.Snapshot().Counters["core_stream_buffer_fills_total"]; got != wantFills {
		t.Errorf("fills counter %d != buffer prefetches %d", got, wantFills)
	}
	if wantFills == 0 {
		t.Error("stream produced no prefetch fills")
	}
}
