package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

func wtConfig(pol Policy) Config {
	c := smallConfig(pol)
	c.Writes = WriteThroughNoAllocate
	return c
}

func TestWriteModeString(t *testing.T) {
	if WriteBackAllocate.String() != "write-back/allocate" ||
		WriteThroughNoAllocate.String() != "write-through/no-allocate" {
		t.Error("write mode names wrong")
	}
	if got := WriteMode(9).String(); got != "WriteMode(9)" {
		t.Errorf("unknown mode = %q", got)
	}
}

func TestWriteThroughMissDoesNotAllocate(t *testing.T) {
	sys := NewSystem(wtConfig(Conventional))
	a := uint64(0x100)
	sys.Access(write(a))
	if sys.L1D().Contains(cache.Addr(a)) {
		t.Error("no-write-allocate store miss allocated in L1")
	}
	if sys.L2().Contains(cache.Addr(a)) {
		t.Error("no-write-allocate store miss allocated in L2")
	}
	st := sys.Stats()
	if st.OffChipFetches != 0 {
		t.Errorf("store miss fetched a line: %d", st.OffChipFetches)
	}
	if st.WriteThroughs != 1 {
		t.Errorf("WriteThroughs = %d, want 1", st.WriteThroughs)
	}
	if st.WriteBacksOffChip != 1 {
		t.Errorf("store with no on-chip home: WriteBacksOffChip = %d, want 1", st.WriteBacksOffChip)
	}
	if st.L1DMisses != 1 {
		t.Errorf("store miss not counted: %+v", st)
	}
}

func TestWriteThroughHitUpdatesWithoutDirtying(t *testing.T) {
	sys := NewSystem(wtConfig(Conventional))
	a := uint64(0x100)
	sys.Access(data(a)) // load allocates (L1 + L2)
	sys.Access(write(a))
	st := sys.Stats()
	if st.L1DHits != 1 {
		t.Errorf("store hit not counted: %+v", st)
	}
	// The store is absorbed by the L2 copy (it exists under conventional).
	if st.WriteBacksToL2 != 1 || st.WriteBacksOffChip != 0 {
		t.Errorf("write-through destination wrong: %+v", st)
	}
	if got := sys.L1D().DirtyLines(); got != 0 {
		t.Errorf("write-through left %d dirty L1 lines", got)
	}
	// Evicting the stored-to line must not produce a write-back.
	sys.Access(data(a + 4*line))
	if sys.Stats().WriteBacksOffChip != 0 {
		t.Error("write-through eviction wrote back")
	}
}

func TestWriteThroughExclusiveGoesOffChip(t *testing.T) {
	// Under the exclusive policy the L2 holds no copy of an L1-resident
	// line, so every write-through continues off-chip.
	sys := NewSystem(wtConfig(Exclusive))
	a := uint64(0x100)
	sys.Access(data(a))
	sys.Access(write(a))
	st := sys.Stats()
	if st.WriteThroughs != 1 || st.WriteBacksOffChip != 1 {
		t.Errorf("exclusive write-through routing wrong: %+v", st)
	}
}

func TestWriteThroughLoadsUnaffected(t *testing.T) {
	// The load stream must behave identically under both write modes
	// when there are no stores.
	refs := make([]trace.Ref, 0, 20000)
	rng := uint64(5)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%3 == 0 {
			kind = trace.Instr
		}
		refs = append(refs, trace.Ref{Kind: kind, Addr: (rng % 2048) * 16})
	}
	wb := NewSystem(smallConfig(Conventional)).Run(trace.NewSliceStream(refs))
	wt := NewSystem(wtConfig(Conventional)).Run(trace.NewSliceStream(refs))
	if wb != wt {
		t.Errorf("store-free streams diverged across write modes:\n%+v\n%+v", wb, wt)
	}
}

func TestWriteThroughEveryStoreCounted(t *testing.T) {
	sys := NewSystem(wtConfig(Conventional))
	rng := uint64(6)
	stores := uint64(0)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%3 == 0 {
			kind = trace.Write
			stores++
		}
		sys.Access(trace.Ref{Kind: kind, Addr: (rng % 2048) * 16})
	}
	st := sys.Stats()
	if st.WriteThroughs != stores {
		t.Errorf("WriteThroughs = %d, want %d (every store)", st.WriteThroughs, stores)
	}
	// Every store lands somewhere: stores absorbed by an L2 copy
	// (WriteBacksToL2) dirty that copy, whose eventual eviction flushes
	// off-chip — so off-chip write traffic is bounded below by the
	// stores that bypassed L2 and above by the store count itself.
	if st.WriteBacksOffChip < stores-st.WriteBacksToL2 {
		t.Errorf("off-chip writes %d below the %d stores that bypassed L2",
			st.WriteBacksOffChip, stores-st.WriteBacksToL2)
	}
	if st.WriteBacksOffChip > stores {
		t.Errorf("off-chip writes %d exceed %d stores", st.WriteBacksOffChip, stores)
	}
}
