package core_test

import (
	"fmt"

	"twolevel/internal/cache"
	"twolevel/internal/core"
	"twolevel/internal/trace"
)

// The paper's Figure-21-a scenario: two addresses that conflict in both
// levels thrash off-chip conventionally but swap on-chip exclusively.
func ExampleSystem() {
	const line = 16
	build := func(pol core.Policy) *core.System {
		return core.NewSystem(core.Config{
			L1I:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
			L1D:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
			L2:     cache.Config{Size: 16 * line, LineSize: line, Assoc: 1},
			Policy: pol,
		})
	}
	a := uint64(13 * line)
	e := a + 16*line
	for _, pol := range []core.Policy{core.Conventional, core.Exclusive} {
		sys := build(pol)
		for i := 0; i < 100; i++ {
			sys.Access(trace.Ref{Kind: trace.Data, Addr: a})
			sys.Access(trace.Ref{Kind: trace.Data, Addr: e})
		}
		fmt.Printf("%-12s off-chip fetches: %d\n", pol, sys.Stats().OffChipFetches)
	}
	// Output:
	// conventional off-chip fetches: 200
	// exclusive    off-chip fetches: 2
}

// A fully-associative victim buffer behind a direct-mapped L1 absorbs
// conflict misses (Jouppi 1990).
func ExampleNewVictimCacheSystem() {
	sys, err := core.NewVictimCacheSystem(1<<10, 4, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Two addresses in the same direct-mapped set.
	for i := 0; i < 100; i++ {
		sys.Access(trace.Ref{Kind: trace.Data, Addr: 0x0000})
		sys.Access(trace.Ref{Kind: trace.Data, Addr: 0x0400})
	}
	fmt.Println("off-chip fetches:", sys.Stats().OffChipFetches)
	// Output:
	// off-chip fetches: 2
}
