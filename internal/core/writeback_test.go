package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

func write(addr uint64) trace.Ref { return trace.Ref{Kind: trace.Write, Addr: addr} }

func TestWriteRefsCounted(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	sys.Access(write(0x100))
	sys.Access(data(0x100))
	sys.Access(instr(0x200))
	st := sys.Stats()
	if st.WriteRefs != 1 {
		t.Errorf("WriteRefs = %d, want 1", st.WriteRefs)
	}
	if st.DataRefs != 2 {
		t.Errorf("DataRefs = %d, want 2 (writes are data references)", st.DataRefs)
	}
}

func TestWriteBehavesLikeReadForMisses(t *testing.T) {
	// §2.2: write-allocate, fetch-on-write — the same address sequence
	// with loads swapped for stores must produce identical hit/miss and
	// off-chip fetch counts.
	run := func(kind trace.Kind) Stats {
		sys := NewSystem(smallConfig(Conventional))
		rng := uint64(77)
		for i := 0; i < 5000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			sys.Access(trace.Ref{Kind: kind, Addr: (rng % 512) * 16})
		}
		return sys.Stats()
	}
	rd, wr := run(trace.Data), run(trace.Write)
	if rd.L1DMisses != wr.L1DMisses || rd.L2Hits != wr.L2Hits || rd.OffChipFetches != wr.OffChipFetches {
		t.Errorf("writes changed hit/miss behaviour: reads %+v writes %+v", rd, wr)
	}
}

func TestDirtyVictimWritesBackToL2(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	a := uint64(0x100)
	sys.Access(write(a)) // fills L1+L2, L1 copy dirty
	// Evict a from L1 with a conflicting read (same L1 set, different
	// L2 set so the L2 copy of a survives).
	sys.Access(data(a + 4*line))
	st := sys.Stats()
	if st.WriteBacksToL2 != 1 {
		t.Errorf("WriteBacksToL2 = %d, want 1", st.WriteBacksToL2)
	}
	if st.WriteBacksOffChip != 0 {
		t.Errorf("WriteBacksOffChip = %d, want 0", st.WriteBacksOffChip)
	}
	// The L2 copy must now be dirty: evicting IT goes off-chip.
	sys.Access(data(a + 16*line)) // same L2 set as a
	if got := sys.Stats().WriteBacksOffChip; got != 1 {
		t.Errorf("dirty L2 victim: WriteBacksOffChip = %d, want 1", got)
	}
}

func TestDirtyVictimWithoutL2GoesOffChip(t *testing.T) {
	sys := NewSystem(Config{
		L1I: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
	})
	a := uint64(0x100)
	sys.Access(write(a))
	sys.Access(data(a + 4*line)) // evict dirty a
	if got := sys.Stats().WriteBacksOffChip; got != 1 {
		t.Errorf("WriteBacksOffChip = %d, want 1", got)
	}
}

func TestCleanVictimNoWriteBack(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	a := uint64(0x100)
	sys.Access(data(a))
	sys.Access(data(a + 4*line))
	st := sys.Stats()
	if st.WriteBacksToL2 != 0 || st.WriteBacksOffChip != 0 {
		t.Errorf("clean victim produced write-backs: %+v", st)
	}
}

func TestExclusiveDirtyStateTravels(t *testing.T) {
	sys := NewSystem(smallConfig(Exclusive))
	a := uint64(0x100)
	b := a + 4*line      // same L1 set, different L2 line
	sys.Access(write(a)) // a dirty in L1
	sys.Access(data(b))  // a's dirty victim moves to L2
	st := sys.Stats()
	if st.WriteBacksToL2 != 1 {
		t.Fatalf("WriteBacksToL2 = %d, want 1", st.WriteBacksToL2)
	}
	// Move a back up: its dirty state must come with it, so evicting it
	// from L1 again is another dirty transfer, not a clean drop.
	sys.Access(data(a)) // L2 hit, moves up (dirty), b moves down
	sys.Access(data(b)) // L2 hit, b up, dirty a down again
	if got := sys.Stats().WriteBacksToL2; got != 2 {
		t.Errorf("dirty state lost on move-up: WriteBacksToL2 = %d, want 2", got)
	}
}

func TestExclusiveDirtyL2VictimGoesOffChip(t *testing.T) {
	sys := NewSystem(smallConfig(Exclusive))
	// Three lines sharing BOTH the L1 set (line mod 4) and the L2 set
	// (line mod 16): a, c, e.
	a := uint64(0x100)   // line 16
	c := a + 16*line     // line 32
	e := a + 32*line     // line 48
	sys.Access(write(a)) // a dirty in L1
	sys.Access(data(c))  // dirty a moves to L2 set 0
	if got := sys.Stats().WriteBacksToL2; got != 1 {
		t.Fatalf("WriteBacksToL2 = %d, want 1", got)
	}
	sys.Access(data(e)) // c's clean victim displaces dirty a from L2
	if got := sys.Stats().WriteBacksOffChip; got != 1 {
		t.Errorf("dirty exclusive L2 victim: WriteBacksOffChip = %d, want 1", got)
	}
}

func TestInclusiveBackInvalidationFlushesDirty(t *testing.T) {
	sys := NewSystem(smallConfig(Inclusive))
	a := uint64(0x100)
	sys.Access(write(a)) // dirty in L1D, clean copy in L2
	// A conflicting INSTRUCTION line displaces a from the DM L2 while the
	// dirty copy still sits in L1D: the back-invalidation must flush it.
	sys.Access(instr(a + 16*line))
	st := sys.Stats()
	if st.BackInvalidations == 0 {
		t.Fatal("no back-invalidation")
	}
	if st.WriteBacksOffChip == 0 {
		t.Error("dirty back-invalidated line not flushed off-chip")
	}
}

func TestWriteBacksBoundedByWrites(t *testing.T) {
	// Sanity across policies. Dirtiness moves between levels but never
	// duplicates, and an off-chip write-back destroys it — so off-chip
	// write-backs are bounded by the number of stores. (On-chip L1->L2
	// transfers are NOT so bounded: under the exclusive policy a dirty
	// line can bounce between levels indefinitely.)
	for _, pol := range []Policy{Conventional, Exclusive, Inclusive} {
		sys := NewSystem(smallConfig(pol))
		rng := uint64(3)
		for i := 0; i < 20000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			kind := trace.Data
			switch rng % 3 {
			case 0:
				kind = trace.Write
			case 1:
				kind = trace.Instr
			}
			sys.Access(trace.Ref{Kind: kind, Addr: (rng % 2048) * 16})
		}
		st := sys.Stats()
		if st.WriteBacksOffChip > st.WriteRefs {
			t.Errorf("%v: %d off-chip write-backs exceed %d writes",
				pol, st.WriteBacksOffChip, st.WriteRefs)
		}
		if st.WriteBacksOffChip == 0 || st.WriteBacksToL2 == 0 {
			t.Errorf("%v: missing write-back traffic under a write-heavy mix: %+v", pol, st)
		}
	}
}
