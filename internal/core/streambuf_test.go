package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

func TestNewStreamBufferValidation(t *testing.T) {
	if _, err := NewStreamBuffer(0); err == nil {
		t.Error("zero-depth buffer accepted")
	}
	if _, err := NewStreamBufferSystem(Config{}, 4, 0); err == nil {
		t.Error("invalid hierarchy accepted")
	}
	if _, err := NewStreamBufferSystem(smallConfig(Conventional), 0, 0); err == nil {
		t.Error("zero-depth system accepted")
	}
}

func TestStreamBufferSequentialHits(t *testing.T) {
	b, err := NewStreamBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	// First miss restarts the buffer at line 101..104.
	if b.Lookup(100) {
		t.Fatal("cold lookup hit")
	}
	// Sequential successors hit the head one after another.
	for l := cache.LineAddr(101); l <= 110; l++ {
		if !b.Lookup(l) {
			t.Fatalf("sequential line %d missed the buffer", l)
		}
	}
	if b.Hits != 10 || b.Restarts != 1 {
		t.Errorf("hits %d restarts %d, want 10/1", b.Hits, b.Restarts)
	}
}

func TestStreamBufferNonHeadMissRestarts(t *testing.T) {
	b, _ := NewStreamBuffer(4)
	b.Lookup(100) // restart at 101..104
	// Line 103 is IN the buffer but not at the head: Jouppi's simple
	// buffer only matches the head, so this restarts.
	if b.Lookup(103) {
		t.Error("non-head entry hit (only the head is matched)")
	}
	if b.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", b.Restarts)
	}
}

func TestStreamBufferSystemHidesSequentialMisses(t *testing.T) {
	// A long sequential instruction walk: the bare system misses every
	// new line off-chip; with an I-stream buffer only the restarts go
	// off-chip.
	mk := func(buffered bool) Stats {
		cfg := Config{
			L1I: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
			L1D: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
		}
		refs := make([]trace.Ref, 0, 40000)
		for pc := uint64(0x100000); len(refs) < 40000; pc += 4 {
			refs = append(refs, trace.Ref{Kind: trace.Instr, Addr: pc})
		}
		if !buffered {
			return NewSystem(cfg).Run(trace.NewSliceStream(refs))
		}
		s, err := NewStreamBufferSystem(cfg, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(trace.NewSliceStream(refs))
	}
	bare, buf := mk(false), mk(true)
	if bare.OffChipFetches == 0 {
		t.Fatal("sequential walk produced no misses")
	}
	if buf.OffChipFetches*10 > bare.OffChipFetches {
		t.Errorf("stream buffer only cut off-chip fetches from %d to %d; want >90%%",
			bare.OffChipFetches, buf.OffChipFetches)
	}
	// L1 miss counts are identical — the buffer changes where misses are
	// SERVED, not whether they happen.
	if bare.L1IMisses != buf.L1IMisses {
		t.Errorf("L1 misses diverged: %d vs %d", bare.L1IMisses, buf.L1IMisses)
	}
}

func TestStreamBufferSystemDataSide(t *testing.T) {
	cfg := Config{
		L1I: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
	}
	s, err := NewStreamBufferSystem(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A sequential data walk (tomcatv-style).
	for a := uint64(0x200000); a < 0x200000+64*1024; a += 8 {
		s.Access(trace.Ref{Kind: trace.Data, Addr: a})
	}
	if s.DataBuffers() == nil || s.DataBuffers().Hits() == 0 {
		t.Error("data-side stream buffer never hit on a sequential walk")
	}
	st := s.Stats()
	if st.OffChipFetches*10 > st.L1DMisses {
		t.Errorf("buffer served too few data misses: %d off-chip of %d misses",
			st.OffChipFetches, st.L1DMisses)
	}
}

func TestStreamBufferExclusiveVictimsStillMove(t *testing.T) {
	// Under the exclusive policy, lines displaced by buffer fills must
	// still land in the L2 (no on-chip data may be silently dropped).
	cfg := smallConfig(Exclusive)
	s, err := NewStreamBufferSystem(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for pc := uint64(0x100000); pc < 0x100000+4096; pc += 4 {
		s.Access(trace.Ref{Kind: trace.Instr, Addr: pc})
	}
	if s.Stats().VictimsToL2 == 0 {
		t.Error("exclusive victims vanished under the stream buffer")
	}
	if dup := s.OnChip().DuplicatedLines(); dup != 0 {
		t.Errorf("exclusive duplication invariant violated: %d lines", dup)
	}
}

func TestStreamBufferRandomTrafficHarmless(t *testing.T) {
	// On random (non-sequential) traffic the buffer almost never hits,
	// and the system must behave like the bare hierarchy.
	refs := synthRefs(30_000)
	cfg := Config{
		L1I: cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
		L2:  cache.Config{Size: 16 << 10, LineSize: 16, Assoc: 4},
	}
	bare := NewSystem(cfg).Run(trace.NewSliceStream(refs))
	s, err := NewStreamBufferSystem(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Run(trace.NewSliceStream(refs))
	// Replacement-state noise allows tiny divergence; anything beyond a
	// percent means the buffer is corrupting hierarchy state.
	if buf.OffChipFetches > bare.OffChipFetches+bare.OffChipFetches/100 {
		t.Errorf("stream buffer increased off-chip fetches: %d vs %d",
			buf.OffChipFetches, bare.OffChipFetches)
	}
	if buf.L1Misses() != bare.L1Misses() {
		t.Errorf("buffer changed L1 miss behaviour: %d vs %d", buf.L1Misses(), bare.L1Misses())
	}
}

func TestStreamBufferSetTracksInterleavedStreams(t *testing.T) {
	if _, err := NewStreamBufferSet(0, 4); err == nil {
		t.Error("zero-way set accepted")
	}
	if _, err := NewStreamBufferSet(2, 0); err == nil {
		t.Error("zero-depth set accepted")
	}
	set, err := NewStreamBufferSet(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two interleaved sequential streams: each keeps its own buffer.
	a, b := cache.LineAddr(1000), cache.LineAddr(9000)
	set.Lookup(a) // restart way for stream A
	set.Lookup(b) // restart way for stream B
	hits := 0
	for i := cache.LineAddr(1); i <= 20; i++ {
		if set.Lookup(a + i) {
			hits++
		}
		if set.Lookup(b + i) {
			hits++
		}
	}
	if hits != 40 {
		t.Errorf("interleaved streams hit %d/40 times", hits)
	}
	if set.Hits() != 40 || set.Restarts() != 2 {
		t.Errorf("set counters: hits %d restarts %d", set.Hits(), set.Restarts())
	}
	// A third stream evicts the LRU buffer; the other two keep flowing.
	set.Lookup(5000)
	if !set.Lookup(b + 21) {
		t.Error("recently used stream was evicted instead of the LRU one")
	}
}
