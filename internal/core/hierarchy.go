// Package core implements the paper's primary contribution: two-level
// on-chip cache hierarchies with split direct-mapped first-level caches
// and an optional mixed second-level cache, under three replacement
// disciplines — the paper's conventional baseline, the paper's §8
// two-level *exclusive* policy, and a strictly inclusive policy (the
// multiprocessor-friendly variant §8 mentions) kept as an ablation.
//
// A System consumes a reference stream and accumulates the hit/miss
// counts that, combined with the timing (internal/timing), area
// (internal/area), and TPI (internal/perf) models, reproduce the paper's
// TPI-versus-area tradeoff curves.
package core

import (
	"fmt"

	"twolevel/internal/cache"
	"twolevel/internal/obs"
	"twolevel/internal/trace"
)

// Policy selects the two-level replacement discipline.
type Policy int

const (
	// Conventional is the paper's baseline: on an L1 miss the L2 is
	// probed; an L2 hit refills L1 (the line stays in L2), an L2 miss
	// fetches from off-chip and fills both levels. Clean L1 victims are
	// dropped; dirty ones write back to the L2 copy when one exists
	// (write traffic does not affect hit/miss behaviour or TPI, matching
	// §2.2's writes-as-reads model — it is tracked in Stats only).
	// Inclusion is neither enforced nor prevented.
	Conventional Policy = iota
	// Exclusive is the paper's §8 policy: on an L1 miss that hits in L2
	// the line *moves* from L2 to L1 while the displaced L1 line moves
	// to L2 (a swap when they map to the same L2 set); on an L2 miss the
	// line is loaded off-chip directly into L1 and the L1 victim moves
	// to L2. Data involved in an L2 mapping conflict thus lives in
	// exactly one level, raising effective capacity and associativity.
	Exclusive
	// Inclusive enforces strict inclusion (Baer–Wang): every L1 line is
	// also in L2, and an L2 eviction back-invalidates the line from both
	// L1 caches. An ablation for the multiprocessor note in §8.
	Inclusive
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Conventional:
		return "conventional"
	case Exclusive:
		return "exclusive"
	case Inclusive:
		return "inclusive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats aggregates hierarchy-level counts from a simulation run.
type Stats struct {
	InstrRefs uint64
	DataRefs  uint64

	L1IHits   uint64
	L1IMisses uint64
	L1DHits   uint64
	L1DMisses uint64

	// L2Hits and L2Misses count probes of the second-level cache (zero
	// in a single-level system, where every L1 miss is an OffChip fetch).
	L2Hits   uint64
	L2Misses uint64

	// OffChipFetches counts lines brought in from off-chip: L2 misses in
	// a two-level system, L1 misses in a single-level one.
	OffChipFetches uint64

	// WriteRefs counts store references (a subset of DataRefs).
	WriteRefs uint64

	// WriteThroughs counts stores forwarded past the L1 under the
	// write-through mode (every store; the destination is the L2 when
	// present, otherwise off-chip).
	WriteThroughs uint64

	// WriteBacksToL2 counts dirty L1 victims absorbed by the second
	// level (updating a resident copy under the conventional/inclusive
	// policies, or travelling with the victim transfer under the
	// exclusive policy).
	WriteBacksToL2 uint64
	// WriteBacksOffChip counts dirty lines whose data had to leave the
	// chip: dirty L1 victims with no L2 home and dirty L2 victims.
	WriteBacksOffChip uint64

	// Swaps counts exclusive move-ups for which the L1 victim landed in
	// the same L2 set the requested line came from (a true swap,
	// Figure 21-a).
	Swaps uint64
	// VictimsToL2 counts L1 victim lines transferred into L2 under the
	// exclusive policy.
	VictimsToL2 uint64
	// BackInvalidations counts L1 lines invalidated to preserve strict
	// inclusion.
	BackInvalidations uint64
}

// Refs reports the total number of references simulated.
func (s Stats) Refs() uint64 { return s.InstrRefs + s.DataRefs }

// L1Misses reports combined first-level misses.
func (s Stats) L1Misses() uint64 { return s.L1IMisses + s.L1DMisses }

// L1MissRate reports combined first-level misses per reference.
func (s Stats) L1MissRate() float64 {
	if s.Refs() == 0 {
		return 0
	}
	return float64(s.L1Misses()) / float64(s.Refs())
}

// GlobalMissRate reports off-chip fetches per reference — the miss rate
// the off-chip system sees.
func (s Stats) GlobalMissRate() float64 {
	if s.Refs() == 0 {
		return 0
	}
	return float64(s.OffChipFetches) / float64(s.Refs())
}

// LocalL2MissRate reports the fraction of L2 probes that missed.
func (s Stats) LocalL2MissRate() float64 {
	if n := s.L2Hits + s.L2Misses; n > 0 {
		return float64(s.L2Misses) / float64(n)
	}
	return 0
}

// WriteMode selects how stores interact with the first-level data cache.
type WriteMode int

const (
	// WriteBackAllocate is the paper's §2.2 model: write-allocate,
	// fetch-on-write, dirty lines written back on eviction. Stores
	// behave exactly like loads for hit/miss purposes.
	WriteBackAllocate WriteMode = iota
	// WriteThroughNoAllocate is the classic alternative (the ablation of
	// the §2.2 choice): store hits update the cache and write through;
	// store misses do NOT allocate — the data goes straight down. Store
	// misses therefore do not fetch lines, and no line is ever dirty.
	WriteThroughNoAllocate
)

// String names the write mode.
func (m WriteMode) String() string {
	switch m {
	case WriteBackAllocate:
		return "write-back/allocate"
	case WriteThroughNoAllocate:
		return "write-through/no-allocate"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

// Config describes a full on-chip hierarchy.
type Config struct {
	// L1 describes each of the split first-level caches. The paper
	// restricts L1 to equal-size direct-mapped I and D caches; this
	// struct allows other shapes for ablations.
	L1I, L1D cache.Config
	// L2 describes the mixed second-level cache. A zero-size L2 means a
	// single-level system.
	L2 cache.Config
	// Policy selects the two-level discipline (ignored when single-level).
	Policy Policy
	// Writes selects the store handling (default: the paper's
	// write-back, write-allocate model).
	Writes WriteMode
}

// TwoLevel reports whether the hierarchy has a second-level cache.
func (c Config) TwoLevel() bool { return c.L2.Size > 0 }

// Validate reports whether the configuration is simulatable.
func (c Config) Validate() error {
	if err := c.L1I.Validate(); err != nil {
		return fmt.Errorf("L1I: %w", err)
	}
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if c.L1I.LineSize != c.L1D.LineSize {
		return fmt.Errorf("core: L1I line %dB != L1D line %dB", c.L1I.LineSize, c.L1D.LineSize)
	}
	if c.TwoLevel() {
		if err := c.L2.Validate(); err != nil {
			return fmt.Errorf("L2: %w", err)
		}
		if c.L2.LineSize != c.L1I.LineSize {
			return fmt.Errorf("core: L2 line %dB != L1 line %dB", c.L2.LineSize, c.L1I.LineSize)
		}
	}
	return nil
}

// String renders the hierarchy like the paper's "x:y" labels (sizes in
// KB per L1 cache and for the L2), e.g. "8:64 exclusive 4-way".
func (c Config) String() string {
	l1 := c.L1I.Size >> 10
	if !c.TwoLevel() {
		return fmt.Sprintf("%d:0", l1)
	}
	return fmt.Sprintf("%d:%d %s %s", l1, c.L2.Size>>10, c.Policy, wayLabel(c.L2.Assoc))
}

func wayLabel(assoc int) string {
	if assoc == 1 {
		return "DM"
	}
	return fmt.Sprintf("%d-way", assoc)
}

// System simulates one hierarchy. It is not safe for concurrent use.
type System struct {
	cfg Config
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache // nil for single-level
	st  Stats

	// Registry instruments (nil when uninstrumented; see Instrument).
	mSwaps, mVictims, mBackInv, mOffChip *obs.Counter
}

// NewSystem builds a hierarchy simulator. It is the trusted-input
// wrapper over TryNewSystem kept for already-validated configurations
// (package-internal invariants, literals in tests and examples): it
// panics on an invalid configuration. Untrusted input goes through
// TryNewSystem or Config.Validate.
func NewSystem(cfg Config) *System {
	s, err := TryNewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// TryNewSystem builds a hierarchy simulator, returning a descriptive
// error for an invalid configuration instead of panicking.
func TryNewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg: cfg,
		l1i: cache.New(cfg.L1I),
		l1d: cache.New(cfg.L1D),
	}
	if cfg.TwoLevel() {
		s.l2 = cache.New(cfg.L2)
	}
	return s, nil
}

// Instrument wires the hierarchy's whole-run counters — and those of its
// member caches — into a metrics registry. A nil registry leaves the
// system effectively uninstrumented (nil obs instruments are no-ops), so
// callers thread whatever they were given without checking. Counters
// aggregate across every system instrumented on the same registry, which
// is the sweep-wide view the observability endpoints serve.
func (s *System) Instrument(r *obs.Registry) {
	s.l1i.Instrument(r, "cache_l1i")
	s.l1d.Instrument(r, "cache_l1d")
	if s.l2 != nil {
		s.l2.Instrument(r, "cache_l2")
	}
	s.mSwaps = r.Counter("core_exclusive_swaps_total")
	s.mVictims = r.Counter("core_victim_transfers_total")
	s.mBackInv = r.Counter("core_back_invalidations_total")
	s.mOffChip = r.Counter("core_offchip_fetches_total")
}

// Config returns the hierarchy configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns the counters accumulated so far.
func (s *System) Stats() Stats { return s.st }

// L1I exposes the instruction cache (for inspection in tests/examples).
func (s *System) L1I() *cache.Cache { return s.l1i }

// L1D exposes the data cache.
func (s *System) L1D() *cache.Cache { return s.l1d }

// L2 exposes the second-level cache, or nil for a single-level system.
func (s *System) L2() *cache.Cache { return s.l2 }

// ObserveLevels attaches demand-access observers to the three levels
// (nil skips a level; the l2 observer is ignored on a single-level
// system). Observers are shadow analyses — see cache.AccessObserver for
// the non-perturbation contract.
func (s *System) ObserveLevels(l1i, l1d, l2 cache.AccessObserver) {
	s.l1i.Observe(l1i)
	s.l1d.Observe(l1d)
	if s.l2 != nil {
		s.l2.Observe(l2)
	}
}

// Access simulates one reference through the hierarchy.
func (s *System) Access(r trace.Ref) {
	var l1 *cache.Cache
	write := false
	switch r.Kind {
	case trace.Instr:
		s.st.InstrRefs++
		l1 = s.l1i
	case trace.Write:
		s.st.DataRefs++
		s.st.WriteRefs++
		l1 = s.l1d
		write = true
	default:
		s.st.DataRefs++
		l1 = s.l1d
	}

	if write && s.cfg.Writes == WriteThroughNoAllocate {
		s.accessWriteThrough(l1, cache.Addr(r.Addr))
		return
	}

	if s.cfg.Policy == Exclusive && s.l2 != nil {
		s.accessExclusive(r, l1, write)
		return
	}

	hit, victim := s.accessL1(l1, cache.Addr(r.Addr), write)
	s.countL1(r.Kind, hit)
	s.retireL1Victim(victim)
	if hit {
		return
	}
	if s.l2 == nil {
		s.st.OffChipFetches++
		s.mOffChip.Inc()
		return
	}
	if s.l2.Lookup(cache.Addr(r.Addr)) {
		s.st.L2Hits++
		return
	}
	s.st.L2Misses++
	s.st.OffChipFetches++
	s.mOffChip.Inc()
	v2 := s.l2.Insert(cache.Addr(r.Addr))
	if v2.Valid && v2.Dirty {
		s.st.WriteBacksOffChip++
	}
	if s.cfg.Policy == Inclusive && v2.Valid {
		// Strict inclusion: the displaced L2 line may not remain in
		// either L1 cache, and a dirty upper copy must be flushed.
		s.backInvalidate(s.l1i, v2.Line)
		s.backInvalidate(s.l1d, v2.Line)
	}
}

// accessWriteThrough handles a store under the write-through,
// no-write-allocate mode: a hit updates the (never-dirty) L1 copy, a
// miss allocates nothing, and the data always continues to the next
// level. Under the conventional/inclusive policies a resident L2 copy is
// updated in place; under the exclusive policy (and with no L2 copy) the
// store continues off-chip. Store traffic is counted in WriteThroughs;
// it never triggers a line fetch, so it contributes no OffChipFetches.
func (s *System) accessWriteThrough(l1 *cache.Cache, a cache.Addr) {
	hit := l1.Lookup(a)
	s.countL1(trace.Write, hit)
	s.st.WriteThroughs++
	if s.l2 != nil && s.cfg.Policy != Exclusive && s.l2.MarkDirtyLine(s.l2.Line(a)) {
		// Absorbed by the L2 copy; its eventual eviction writes back.
		s.st.WriteBacksToL2++
		return
	}
	s.st.WriteBacksOffChip++
}

// accessL1 issues a read or write demand reference to an L1 cache.
func (s *System) accessL1(l1 *cache.Cache, a cache.Addr, write bool) (bool, cache.Victim) {
	if write {
		return l1.AccessWrite(a)
	}
	return l1.Access(a)
}

// retireL1Victim handles a (possibly dirty) line displaced from an L1
// under the non-exclusive policies: dirty data is written back to the
// L2's copy when one exists, otherwise it leaves the chip.
func (s *System) retireL1Victim(v cache.Victim) {
	if !v.Valid || !v.Dirty {
		return
	}
	if s.l2 != nil && s.l2.MarkDirtyLine(v.Line) {
		s.st.WriteBacksToL2++
		return
	}
	s.st.WriteBacksOffChip++
}

// backInvalidate purges l from an L1 to preserve strict inclusion,
// flushing dirty data off-chip.
func (s *System) backInvalidate(l1 *cache.Cache, l cache.LineAddr) {
	present, dirty := l1.InvalidateLineState(l)
	if present {
		s.st.BackInvalidations++
		s.mBackInv.Inc()
	}
	if dirty {
		s.st.WriteBacksOffChip++
	}
}

// accessExclusive implements the §8 policy for one reference.
func (s *System) accessExclusive(r trace.Ref, l1 *cache.Cache, write bool) {
	addr := cache.Addr(r.Addr)
	hit, victim := s.accessL1(l1, addr, write)
	s.countL1(r.Kind, hit)
	if hit {
		return
	}
	reqLine := l1.Line(addr)
	if s.l2.Lookup(addr) {
		s.st.L2Hits++
		// Move (not copy) the line up: it leaves L2, its dirty state
		// travelling with it...
		if _, dirty := s.l2.InvalidateLineState(reqLine); dirty {
			l1.MarkDirtyLine(reqLine)
		}
		// ...and the L1 victim moves down. When both map to the same L2
		// set this is the paper's swap (Figure 21-a).
		s.victimToL2(victim, reqLine, true)
		return
	}
	s.st.L2Misses++
	s.st.OffChipFetches++
	s.mOffChip.Inc()
	// The requested line is loaded from off-chip directly into L1
	// (already allocated by the L1 access); only the victim enters L2.
	s.victimToL2(victim, reqLine, false)
}

// victimToL2 transfers an exclusive L1 victim into the second level,
// tracking swaps, write-back traffic, and dirty L2 victims.
func (s *System) victimToL2(victim cache.Victim, reqLine cache.LineAddr, l2Hit bool) {
	if !victim.Valid {
		return
	}
	s.st.VictimsToL2++
	s.mVictims.Inc()
	if victim.Dirty {
		s.st.WriteBacksToL2++
	}
	if l2Hit && s.sameL2Set(victim.Line, reqLine) {
		s.st.Swaps++
		s.mSwaps.Inc()
	}
	if v2 := s.l2.InsertLineState(victim.Line, victim.Dirty); v2.Valid && v2.Dirty {
		s.st.WriteBacksOffChip++
	}
}

// sameL2Set reports whether two lines index the same L2 set.
func (s *System) sameL2Set(a, b cache.LineAddr) bool {
	mask := cache.LineAddr(s.cfg.L2.Sets() - 1)
	return a&mask == b&mask
}

// countL1 updates the per-kind L1 counters.
func (s *System) countL1(k trace.Kind, hit bool) {
	switch {
	case k == trace.Instr && hit:
		s.st.L1IHits++
	case k == trace.Instr:
		s.st.L1IMisses++
	case hit:
		s.st.L1DHits++
	default:
		s.st.L1DMisses++
	}
}

// Run drains an entire reference stream through the hierarchy and
// returns the resulting statistics.
func (s *System) Run(st trace.Stream) Stats {
	for {
		r, ok := st.Next()
		if !ok {
			return s.st
		}
		s.Access(r)
	}
}

// UniqueOnChipLines reports the number of distinct lines resident across
// all on-chip caches — the quantity exclusive caching maximizes (§8: a
// direct-mapped exclusive pair can hold up to 2x+y unique lines).
func (s *System) UniqueOnChipLines() int {
	seen := make(map[cache.LineAddr]struct{})
	add := func(l cache.LineAddr) { seen[l] = struct{}{} }
	s.l1i.VisitLines(add)
	s.l1d.VisitLines(add)
	if s.l2 != nil {
		s.l2.VisitLines(add)
	}
	return len(seen)
}

// DuplicatedLines reports how many resident L2 lines are also resident in
// an L1 cache — the duplication exclusive caching eliminates.
func (s *System) DuplicatedLines() int {
	if s.l2 == nil {
		return 0
	}
	dup := 0
	s.l2.VisitLines(func(l cache.LineAddr) {
		if s.l1i.ContainsLine(l) || s.l1d.ContainsLine(l) {
			dup++
		}
	})
	return dup
}

// ResetStats zeroes the hierarchy and per-cache counters without touching
// cache contents — measure steady state by warming up, resetting, then
// running the measurement window.
func (s *System) ResetStats() {
	s.st = Stats{}
	s.l1i.ResetStats()
	s.l1d.ResetStats()
	if s.l2 != nil {
		s.l2.ResetStats()
	}
}
