package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

// TestL1TrajectoryPolicyIndependent: the L1 caches are demand-driven and
// allocate on every miss regardless of where the fill comes from, so the
// conventional and exclusive policies must produce IDENTICAL L1 hit/miss
// counts on any trace. (Inclusive may differ: back-invalidations remove
// L1 lines.)
func TestL1TrajectoryPolicyIndependent(t *testing.T) {
	refs := synthRefs(50_000)
	run := func(pol Policy) Stats {
		sys := NewSystem(Config{
			L1I:    cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
			L1D:    cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
			L2:     cache.Config{Size: 16 << 10, LineSize: 16, Assoc: 4},
			Policy: pol,
		})
		return sys.Run(trace.NewSliceStream(refs))
	}
	conv, excl := run(Conventional), run(Exclusive)
	if conv.L1IMisses != excl.L1IMisses || conv.L1DMisses != excl.L1DMisses {
		t.Errorf("L1 trajectories diverged: conventional %d/%d vs exclusive %d/%d",
			conv.L1IMisses, conv.L1DMisses, excl.L1IMisses, excl.L1DMisses)
	}
	if conv.L1IHits != excl.L1IHits || conv.L1DHits != excl.L1DHits {
		t.Errorf("L1 hits diverged: %+v vs %+v", conv, excl)
	}
	// The L2 probe count is the L1 miss count under both policies.
	if conv.L2Hits+conv.L2Misses != conv.L1Misses() {
		t.Error("conventional L2 probes do not equal L1 misses")
	}
	if excl.L2Hits+excl.L2Misses != excl.L1Misses() {
		t.Error("exclusive L2 probes do not equal L1 misses")
	}
}

// TestExclusiveLimitingCase2xPlusY (§8): "In the limiting case with the
// number of L2 sets equal to the number of lines in the L1 cache,
// exactly 2x+y unique lines will always be held on-chip." Configure the
// L2 with as many sets as one L1 has lines, warm it up, and check the
// exact count.
func TestExclusiveLimitingCase2xPlusY(t *testing.T) {
	const lineB = 16
	const x = 8 // lines per L1 cache
	// L2: 8 sets x 4 ways = 32 lines (y), sets == x.
	sys := NewSystem(Config{
		L1I:    cache.Config{Size: x * lineB, LineSize: lineB, Assoc: 1},
		L1D:    cache.Config{Size: x * lineB, LineSize: lineB, Assoc: 1},
		L2:     cache.Config{Size: 32 * lineB, LineSize: lineB, Assoc: 4, Policy: cache.LRU},
		Policy: Exclusive,
	})
	// Heavy traffic with footprints far exceeding the hierarchy.
	rng := uint64(101)
	for i := 0; i < 100_000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%3 == 0 {
			kind = trace.Instr
		}
		sys.Access(trace.Ref{Kind: kind, Addr: (rng % (1 << 14)) * lineB})
	}
	want := 2*x + 32
	if got := sys.UniqueOnChipLines(); got != want {
		t.Errorf("unique on-chip lines = %d, want exactly 2x+y = %d (paper §8 limiting case)", got, want)
	}
	if dup := sys.DuplicatedLines(); dup != 0 {
		t.Errorf("duplicated lines = %d", dup)
	}
}

// TestGlobalMissesNeverExceedL1Misses: every off-chip fetch starts as an
// L1 miss, under every policy.
func TestGlobalMissesNeverExceedL1Misses(t *testing.T) {
	refs := synthRefs(30_000)
	for _, pol := range []Policy{Conventional, Exclusive, Inclusive} {
		sys := NewSystem(Config{
			L1I:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
			L1D:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
			L2:     cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 2},
			Policy: pol,
		})
		st := sys.Run(trace.NewSliceStream(refs))
		if st.OffChipFetches > st.L1Misses() {
			t.Errorf("%v: %d off-chip fetches exceed %d L1 misses", pol, st.OffChipFetches, st.L1Misses())
		}
		if st.OffChipFetches != st.L2Misses {
			t.Errorf("%v: off-chip fetches %d != L2 misses %d", pol, st.OffChipFetches, st.L2Misses)
		}
	}
}

// TestExclusiveHelpsOnConflictHeavyTraffic: on the synthetic mix the
// exclusive policy's extra effective capacity must not lose to the
// conventional baseline.
func TestExclusiveHelpsOnConflictHeavyTraffic(t *testing.T) {
	refs := synthRefs(100_000)
	run := func(pol Policy) uint64 {
		sys := NewSystem(Config{
			L1I:    cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
			L1D:    cache.Config{Size: 2 << 10, LineSize: 16, Assoc: 1},
			L2:     cache.Config{Size: 16 << 10, LineSize: 16, Assoc: 4},
			Policy: pol,
		})
		return sys.Run(trace.NewSliceStream(refs)).OffChipFetches
	}
	conv, excl := run(Conventional), run(Exclusive)
	if excl > conv {
		t.Errorf("exclusive fetched off-chip more than conventional: %d vs %d", excl, conv)
	}
}

// TestResidencyConservation: once warm, every policy keeps essentially
// every cache slot full. Two transient-hole sources are inherent and get
// small slack: an exclusive move-up empties an L2 slot that the
// downgoing victim may not refill (it maps to its own set), and an
// inclusive back-invalidation empties L1 slots until the next miss.
// Anything beyond a few percent is a capacity leak.
func TestResidencyConservation(t *testing.T) {
	refs := synthRefs(60_000)
	for _, pol := range []Policy{Conventional, Exclusive, Inclusive} {
		cfg := Config{
			L1I:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
			L1D:    cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1},
			L2:     cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 4},
			Policy: pol,
		}
		sys := NewSystem(cfg)
		sys.Run(trace.NewSliceStream(refs))
		capacity := cfg.L1I.Lines() + cfg.L1D.Lines() + cfg.L2.Lines()
		resident := sys.L1I().ResidentLines() + sys.L1D().ResidentLines() + sys.L2().ResidentLines()
		slack := 0
		switch pol {
		case Inclusive:
			slack = capacity / 10
		case Exclusive:
			slack = capacity / 50
		}
		if resident < capacity-slack {
			t.Errorf("%v: %d of %d slots resident after warmup (capacity leak)", pol, resident, capacity)
		}
		if resident > capacity {
			t.Errorf("%v: %d resident exceeds capacity %d", pol, resident, capacity)
		}
	}
}
