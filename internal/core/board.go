package core

import (
	"fmt"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

// BoardSystem wraps an on-chip System with an explicit board-level cache
// — the thing the paper's 50ns off-chip service time stands for ("systems
// with and without a board-level cache", §2.1). Instead of assuming every
// off-chip request is served in a flat 50ns, the board cache is simulated:
// hits are served at board speed, misses go to main memory.
//
// The board cache is mixed, physically addressed, demand-filled, and
// lockup, like the paper's board-level caches of the era. Per the §8
// closing note, inclusion between the on-chip caches and the board cache
// is the multiprocessor-friendly arrangement; this model demand-fills
// without enforcing it (the counters are what the study needs).
type BoardSystem struct {
	sys   *System
	board *cache.Cache
	st    BoardStats
}

// BoardStats extends the on-chip statistics with board-level counts.
type BoardStats struct {
	// BoardHits and BoardMisses split the on-chip system's off-chip
	// fetches: hits are served by the board cache, misses by memory.
	BoardHits   uint64
	BoardMisses uint64
}

// NewBoardSystem builds an on-chip hierarchy backed by a board cache.
// The board cache line size must match the on-chip line size.
func NewBoardSystem(onChip Config, board cache.Config) (*BoardSystem, error) {
	if err := onChip.Validate(); err != nil {
		return nil, err
	}
	if err := board.Validate(); err != nil {
		return nil, fmt.Errorf("board: %w", err)
	}
	if board.LineSize != onChip.L1I.LineSize {
		return nil, fmt.Errorf("core: board line %dB != on-chip line %dB",
			board.LineSize, onChip.L1I.LineSize)
	}
	if board.Size <= onChip.L2.Size {
		return nil, fmt.Errorf("core: board cache (%d B) should exceed the on-chip L2 (%d B)",
			board.Size, onChip.L2.Size)
	}
	return &BoardSystem{
		sys:   NewSystem(onChip),
		board: cache.New(board),
	}, nil
}

// Access simulates one reference through the on-chip hierarchy and, on an
// off-chip fetch, through the board cache.
func (b *BoardSystem) Access(r trace.Ref) {
	before := b.sys.Stats().OffChipFetches
	b.sys.Access(r)
	if b.sys.Stats().OffChipFetches == before {
		return // served on-chip
	}
	if hit, _ := b.board.Access(cache.Addr(r.Addr)); hit {
		b.st.BoardHits++
	} else {
		b.st.BoardMisses++
	}
}

// Run drains a stream through the system.
func (b *BoardSystem) Run(s trace.Stream) (Stats, BoardStats) {
	for {
		r, ok := s.Next()
		if !ok {
			return b.sys.Stats(), b.st
		}
		b.Access(r)
	}
}

// OnChip exposes the wrapped on-chip system.
func (b *BoardSystem) OnChip() *System { return b.sys }

// Board exposes the board-level cache.
func (b *BoardSystem) Board() *cache.Cache { return b.board }

// Stats returns the on-chip statistics accumulated so far.
func (b *BoardSystem) Stats() Stats { return b.sys.Stats() }

// BoardStats returns the board-level statistics accumulated so far.
func (b *BoardSystem) BoardStats() BoardStats { return b.st }

// MemoryMissRate reports board-cache misses per reference — the traffic
// main memory sees.
func (b *BoardSystem) MemoryMissRate() float64 {
	refs := b.sys.Stats().Refs()
	if refs == 0 {
		return 0
	}
	return float64(b.st.BoardMisses) / float64(refs)
}
