package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

const line = 16

// smallConfig is the Figure-21 geometry: 4-line DM L1s, 16-line DM L2.
func smallConfig(pol Policy) Config {
	return Config{
		L1I:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L2:     cache.Config{Size: 16 * line, LineSize: line, Assoc: 1},
		Policy: pol,
	}
}

func data(addr uint64) trace.Ref  { return trace.Ref{Kind: trace.Data, Addr: addr} }
func instr(addr uint64) trace.Ref { return trace.Ref{Kind: trace.Instr, Addr: addr} }

func TestPolicyString(t *testing.T) {
	if Conventional.String() != "conventional" || Exclusive.String() != "exclusive" || Inclusive.String() != "inclusive" {
		t.Error("policy names wrong")
	}
	if got := Policy(9).String(); got != "Policy(9)" {
		t.Errorf("unknown policy = %q", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(Conventional)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad L1I", func(c *Config) { c.L1I.Size = 3 }},
		{"bad L1D", func(c *Config) { c.L1D.Assoc = 0 }},
		{"L1 line mismatch", func(c *Config) { c.L1D.LineSize = 32; c.L1D.Size = 64 * 32 }},
		{"bad L2", func(c *Config) { c.L2.Size = 100 }},
		{"L2 line mismatch", func(c *Config) { c.L2.LineSize = 32 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(Conventional)
			tc.mut(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{
		L1I: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1},
	}
	if got := cfg.String(); got != "8:0" {
		t.Errorf("String() = %q, want 8:0", got)
	}
	cfg.L2 = cache.Config{Size: 64 << 10, LineSize: 16, Assoc: 4}
	cfg.Policy = Exclusive
	if got := cfg.String(); got != "8:64 exclusive 4-way" {
		t.Errorf("String() = %q", got)
	}
	cfg.L2.Assoc = 1
	if got := cfg.String(); got != "8:64 exclusive DM" {
		t.Errorf("String() = %q", got)
	}
}

func TestSingleLevelMissGoesOffChip(t *testing.T) {
	sys := NewSystem(Config{
		L1I: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D: cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
	})
	sys.Access(data(0x100))
	sys.Access(data(0x100))
	sys.Access(instr(0x200))
	st := sys.Stats()
	if st.OffChipFetches != 2 {
		t.Errorf("OffChipFetches = %d, want 2", st.OffChipFetches)
	}
	if st.L2Hits != 0 || st.L2Misses != 0 {
		t.Errorf("single-level system counted L2 probes: %+v", st)
	}
	if st.L1DHits != 1 || st.L1DMisses != 1 || st.L1IMisses != 1 {
		t.Errorf("L1 counts wrong: %+v", st)
	}
}

func TestConventionalL2HitAndFill(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	a := uint64(0x100)

	// First touch: misses everywhere, fills both levels.
	sys.Access(data(a))
	st := sys.Stats()
	if st.L2Misses != 1 || st.OffChipFetches != 1 {
		t.Fatalf("first touch: %+v", st)
	}
	if !sys.L2().Contains(cache.Addr(a)) || !sys.L1D().Contains(cache.Addr(a)) {
		t.Fatal("conventional fill did not populate both levels")
	}

	// Evict it from L1 with a conflicting line, then re-touch: must hit
	// in L2 without going off-chip.
	sys.Access(data(a + 4*line)) // same L1 set (4-line L1), different L2 set
	sys.Access(data(a))
	st = sys.Stats()
	if st.L2Hits != 1 {
		t.Errorf("L2Hits = %d, want 1", st.L2Hits)
	}
	if st.OffChipFetches != 2 {
		t.Errorf("OffChipFetches = %d, want 2 (a, then the conflicting line)", st.OffChipFetches)
	}
	// The line stays in L2 under the conventional policy.
	if !sys.L2().Contains(cache.Addr(a)) {
		t.Error("conventional L2 hit removed the line from L2")
	}
}

func TestExclusiveMoveUpRemovesFromL2(t *testing.T) {
	sys := NewSystem(smallConfig(Exclusive))
	a := uint64(0x100)
	sys.Access(data(a))
	// Exclusive off-chip fill goes to L1 only.
	if sys.L2().Contains(cache.Addr(a)) {
		t.Error("exclusive off-chip fill populated L2")
	}
	// Evict a from L1: the victim must move to L2.
	b := a + 4*line
	sys.Access(data(b))
	if !sys.L2().Contains(cache.Addr(a)) {
		t.Error("L1 victim did not move to L2")
	}
	st := sys.Stats()
	if st.VictimsToL2 != 1 {
		t.Errorf("VictimsToL2 = %d, want 1", st.VictimsToL2)
	}
	// Re-touch a: L2 hit, and the line must MOVE (leave L2).
	sys.Access(data(a))
	st = sys.Stats()
	if st.L2Hits != 1 {
		t.Errorf("L2Hits = %d, want 1", st.L2Hits)
	}
	if sys.L2().Contains(cache.Addr(a)) {
		t.Error("exclusive L2 hit left the line in L2")
	}
	if !sys.L1D().Contains(cache.Addr(a)) {
		t.Error("moved-up line not in L1")
	}
	// And b (the displaced L1 line) must now be in L2.
	if !sys.L2().Contains(cache.Addr(b)) {
		t.Error("displaced line did not move down to L2")
	}
}

func TestExclusiveSwapFigure21a(t *testing.T) {
	// A and E map to the same line in both levels. Alternating accesses
	// must settle into pure on-chip swaps.
	sys := NewSystem(smallConfig(Exclusive))
	a := uint64(13 * line)
	e := a + 16*line
	for i := 0; i < 4; i++ { // warm up
		sys.Access(data(a))
		sys.Access(data(e))
	}
	before := sys.Stats()
	for i := 0; i < 50; i++ {
		sys.Access(data(a))
		sys.Access(data(e))
	}
	st := sys.Stats()
	if got := st.OffChipFetches - before.OffChipFetches; got != 0 {
		t.Errorf("steady state went off-chip %d times", got)
	}
	if got := st.L2Hits - before.L2Hits; got != 100 {
		t.Errorf("L2Hits delta = %d, want 100 (every access swaps)", got)
	}
	if got := st.Swaps - before.Swaps; got != 100 {
		t.Errorf("Swaps delta = %d, want 100", got)
	}
	// Exactly one of A and E in each level.
	inL1 := func(x uint64) bool { return sys.L1D().Contains(cache.Addr(x)) }
	inL2 := func(x uint64) bool { return sys.L2().Contains(cache.Addr(x)) }
	if inL1(a) == inL1(e) {
		t.Error("want exactly one of A/E in L1")
	}
	if inL2(a) == inL2(e) {
		t.Error("want exactly one of A/E in L2")
	}
}

func TestConventionalFigure21aThrashes(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	a := uint64(13 * line)
	e := a + 16*line
	for i := 0; i < 4; i++ {
		sys.Access(data(a))
		sys.Access(data(e))
	}
	before := sys.Stats()
	for i := 0; i < 50; i++ {
		sys.Access(data(a))
		sys.Access(data(e))
	}
	if got := sys.Stats().OffChipFetches - before.OffChipFetches; got != 100 {
		t.Errorf("conventional thrash fetched off-chip %d times, want 100", got)
	}
}

func TestExclusiveNoDuplicationInvariant(t *testing.T) {
	// After any access pattern, no line may live in both L2 and an L1.
	sys := NewSystem(smallConfig(Exclusive))
	rng := uint64(12345)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%3 == 0 {
			kind = trace.Instr
		}
		sys.Access(trace.Ref{Kind: kind, Addr: (rng % 4096) * 8})
	}
	if dup := sys.DuplicatedLines(); dup != 0 {
		t.Errorf("exclusive hierarchy holds %d duplicated lines", dup)
	}
}

func TestExclusiveCapacity2xPlusY(t *testing.T) {
	// §8 limiting case: DM L2 with conflicting working set. With 4-line
	// L1s and a 16-line L2, an exclusive hierarchy can hold 2x+y = 24
	// unique lines; drive enough distinct lines through and count.
	sys := NewSystem(smallConfig(Exclusive))
	for i := uint64(0); i < 64; i++ {
		sys.Access(data(i * line))
		sys.Access(instr(i * line * 7))
	}
	unique := sys.UniqueOnChipLines()
	if unique > 24 {
		t.Errorf("unique on-chip lines %d exceeds 2x+y = 24", unique)
	}
	if unique < 17 {
		t.Errorf("unique on-chip lines %d; exclusion should exceed the L2's 16", unique)
	}
}

func TestConventionalDuplicationExists(t *testing.T) {
	sys := NewSystem(smallConfig(Conventional))
	for i := uint64(0); i < 8; i++ {
		sys.Access(data(i * line))
	}
	if sys.DuplicatedLines() == 0 {
		t.Error("conventional hierarchy shows no L1/L2 duplication")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	// The mixed L2 is shared by both L1s: a data fill that evicts an
	// instruction line from L2 must purge it from L1I too, even though
	// L1I would otherwise still hold it.
	sys := NewSystem(smallConfig(Inclusive))
	a := uint64(0x100)
	sys.Access(instr(a))
	if !sys.L1I().Contains(cache.Addr(a)) || !sys.L2().Contains(cache.Addr(a)) {
		t.Fatal("inclusive fill missing a level")
	}
	// A data line in the same L2 set displaces a from the DM L2.
	b := a + 16*line
	sys.Access(data(b))
	st := sys.Stats()
	if st.BackInvalidations == 0 {
		t.Error("L2 eviction did not back-invalidate L1")
	}
	if sys.L1I().Contains(cache.Addr(a)) {
		t.Error("back-invalidated line still in L1I")
	}
}

func TestInclusionInvariantHolds(t *testing.T) {
	// After any access pattern, every L1-resident line is L2-resident.
	cfg := Config{
		L1I:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D:    cache.Config{Size: 4 * line, LineSize: line, Assoc: 1},
		L2:     cache.Config{Size: 32 * line, LineSize: line, Assoc: 2, Policy: cache.LRU},
		Policy: Inclusive,
	}
	sys := NewSystem(cfg)
	rng := uint64(999)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%2 == 0 {
			kind = trace.Instr
		}
		sys.Access(trace.Ref{Kind: kind, Addr: (rng % 1024) * 16})
	}
	violations := 0
	sys.L1I().VisitLines(func(l cache.LineAddr) {
		if !sys.L2().ContainsLine(l) {
			violations++
		}
	})
	sys.L1D().VisitLines(func(l cache.LineAddr) {
		if !sys.L2().ContainsLine(l) {
			violations++
		}
	})
	if violations != 0 {
		t.Errorf("%d L1 lines missing from the inclusive L2", violations)
	}
}

func TestStatsAccessors(t *testing.T) {
	st := Stats{
		InstrRefs: 300, DataRefs: 100,
		L1IMisses: 30, L1DMisses: 10,
		L2Hits: 25, L2Misses: 15, OffChipFetches: 15,
	}
	if st.Refs() != 400 {
		t.Errorf("Refs() = %d", st.Refs())
	}
	if st.L1Misses() != 40 {
		t.Errorf("L1Misses() = %d", st.L1Misses())
	}
	if got := st.L1MissRate(); got != 0.1 {
		t.Errorf("L1MissRate() = %v", got)
	}
	if got := st.GlobalMissRate(); got != 15.0/400 {
		t.Errorf("GlobalMissRate() = %v", got)
	}
	if got := st.LocalL2MissRate(); got != 15.0/40 {
		t.Errorf("LocalL2MissRate() = %v", got)
	}
	empty := Stats{}
	if empty.L1MissRate() != 0 || empty.GlobalMissRate() != 0 || empty.LocalL2MissRate() != 0 {
		t.Error("empty stats rates non-zero")
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() Stats {
		sys := NewSystem(smallConfig(Exclusive))
		refs := make([]trace.Ref, 0, 5000)
		rng := uint64(7)
		for i := 0; i < 5000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			refs = append(refs, data((rng%2048)*16))
		}
		return sys.Run(trace.NewSliceStream(refs))
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestNewSystemPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSystem(Config{})
}

func TestMixedL2SharedBetweenInstrAndData(t *testing.T) {
	// An instruction line evicted from L1I must be servable to... the L2
	// is mixed: data and instruction lines compete for the same sets.
	sys := NewSystem(smallConfig(Conventional))
	a := uint64(13 * line)
	sys.Access(instr(a))
	if !sys.L2().Contains(cache.Addr(a)) {
		t.Fatal("instruction fill skipped L2")
	}
	// A data line with the same L2 index displaces it (DM L2).
	sys.Access(data(a + 16*line))
	if sys.L2().Contains(cache.Addr(a)) {
		t.Error("mixed L2 did not share sets between instructions and data")
	}
}

func TestResetStats(t *testing.T) {
	sys := NewSystem(smallConfig(Exclusive))
	sys.Access(data(0x100))
	sys.Access(data(0x210)) // different L1 set, leaves 0x100 resident
	sys.ResetStats()
	if sys.Stats() != (Stats{}) {
		t.Errorf("stats after reset: %+v", sys.Stats())
	}
	if sys.L1D().Stats().Accesses != 0 {
		t.Error("L1 cache stats not reset")
	}
	// Contents survive: the warmed line still hits.
	sys.Access(data(0x100))
	if sys.Stats().L1DHits != 1 {
		t.Error("ResetStats flushed cache contents")
	}
}
