package core

import (
	"testing"

	"twolevel/internal/cache"
	"twolevel/internal/trace"
)

func TestNewVictimCacheSystemValidation(t *testing.T) {
	if _, err := NewVictimCacheSystem(8<<10, 0, 16); err == nil {
		t.Error("zero-line victim buffer accepted")
	}
	if _, err := NewVictimCacheSystem(8<<10, 3, 16); err == nil {
		t.Error("non-power-of-two victim buffer accepted (3 lines -> 48B cache)")
	}
	sys, err := NewVictimCacheSystem(8<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().L2.Assoc; got != 4 {
		t.Errorf("victim buffer associativity = %d, want fully associative (4)", got)
	}
	if sys.Config().Policy != Exclusive {
		t.Error("victim system not exclusive")
	}
	if got := sys.Config().L1I.LineSize; got != 16 {
		t.Errorf("default line size = %d, want 16", got)
	}
}

func TestVictimCacheAbsorbsConflicts(t *testing.T) {
	// Jouppi 1990's motivating case: two lines ping-pong in one
	// direct-mapped set; a tiny fully-associative victim buffer converts
	// all the conflict misses into swaps.
	sys, err := NewVictimCacheSystem(1<<10, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, b := uint64(0x0000), uint64(0x0400) // same set in a 1KB DM cache
	for i := 0; i < 4; i++ {               // warm
		sys.Access(data(a))
		sys.Access(data(b))
	}
	before := sys.Stats()
	for i := 0; i < 100; i++ {
		sys.Access(data(a))
		sys.Access(data(b))
	}
	after := sys.Stats()
	if got := after.OffChipFetches - before.OffChipFetches; got != 0 {
		t.Errorf("victim buffer let %d conflict misses go off-chip", got)
	}
	if got := after.L2Hits - before.L2Hits; got != 200 {
		t.Errorf("victim buffer hits = %d, want 200", got)
	}
}

func TestVictimCacheCapacityBound(t *testing.T) {
	// With V victim lines, at most V+1 conflicting lines per DM set can
	// stay on-chip; V+2 must thrash.
	sys, err := NewVictimCacheSystem(1<<10, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Four lines in the same L1 set with only 2 victim slots: misses must
	// keep going off-chip.
	addrs := []uint64{0x0000, 0x0400, 0x0800, 0x0C00}
	for i := 0; i < 8; i++ {
		for _, a := range addrs {
			sys.Access(data(a))
		}
	}
	before := sys.Stats()
	for i := 0; i < 50; i++ {
		for _, a := range addrs {
			sys.Access(data(a))
		}
	}
	after := sys.Stats()
	if got := after.OffChipFetches - before.OffChipFetches; got == 0 {
		t.Error("4 conflicting lines fit in L1+2 victim slots; capacity bound violated")
	}
}

func TestVictimCacheSharedBetweenIAndD(t *testing.T) {
	// The buffer is shared: an instruction victim can be recovered even
	// while data victims flow through it.
	sys, err := NewVictimCacheSystem(1<<10, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := uint64(0x10000), uint64(0x10400) // conflicting I lines
	sys.Access(instr(ia))
	sys.Access(instr(ib)) // evicts ia into the shared buffer
	sys.Access(data(0x20000))
	before := sys.Stats()
	sys.Access(instr(ia)) // must come back from the buffer
	after := sys.Stats()
	if after.OffChipFetches != before.OffChipFetches {
		t.Error("instruction victim was not recovered from the shared buffer")
	}
	if after.L2Hits != before.L2Hits+1 {
		t.Error("recovery not counted as a buffer hit")
	}
}

func TestVictimCacheReducesMissesOnWorkload(t *testing.T) {
	// On a conflict-bearing reference mix a 16-line victim buffer must
	// strictly reduce off-chip fetches versus the bare L1.
	bare := NewSystem(Config{
		L1I: cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1},
		L1D: cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1},
	})
	vc, err := NewVictimCacheSystem(4<<10, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range synthRefs(200_000) {
		bare.Access(r)
		vc.Access(r)
	}
	if vc.Stats().OffChipFetches >= bare.Stats().OffChipFetches {
		t.Errorf("victim buffer did not reduce off-chip fetches: %d vs %d",
			vc.Stats().OffChipFetches, bare.Stats().OffChipFetches)
	}
}

func synthRefs(n int) []trace.Ref {
	rng := uint64(2024)
	refs := make([]trace.Ref, 0, n)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		kind := trace.Data
		if rng%3 == 0 {
			kind = trace.Instr
		}
		refs = append(refs, trace.Ref{Kind: kind, Addr: (rng % 8192) * 16})
	}
	return refs
}
