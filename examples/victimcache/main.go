// Victim-cache degenerate case: §8 notes that when the second level is
// SMALLER than the first (y < x), the exclusive hierarchy becomes a
// shared direct-mapped victim cache (Jouppi 1990). This example shows a
// tiny exclusive L2 absorbing the conflict misses of a direct-mapped L1
// that a conventional L2 of the same size cannot, on a deliberately
// conflict-heavy reference pattern and on a real workload.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

const line = 16

// build makes a hierarchy with 16KB split L1s and a small L2.
func build(l2Bytes int64, policy twolevel.Policy) *twolevel.System {
	return twolevel.NewSystem(twolevel.Hierarchy{
		L1I:    twolevel.CacheConfig{Size: 16 << 10, LineSize: line, Assoc: 1},
		L1D:    twolevel.CacheConfig{Size: 16 << 10, LineSize: line, Assoc: 1},
		L2:     twolevel.CacheConfig{Size: l2Bytes, LineSize: line, Assoc: 1},
		Policy: policy,
	})
}

func main() {
	// A classic conflict pattern: 64 pairs of addresses, each pair
	// colliding in one set of the direct-mapped 16KB L1 (1024 lines).
	// The working set is only 2KB, but a direct-mapped L1 can hold just
	// one line of each pair — every pair ping-pongs.
	var pattern []uint64
	for s := uint64(0); s < 64; s++ {
		a := 0x10000000 + s*line
		pattern = append(pattern, a, a+16*1024) // same L1 set, different tags
	}

	fmt.Println("conflict pattern, 16KB direct-mapped L1D + 2KB direct-mapped L2 (y < x):")
	for _, policy := range []twolevel.Policy{twolevel.Conventional, twolevel.Exclusive} {
		sys := build(2<<10, policy)
		for i := 0; i < 4; i++ { // warm
			for _, a := range pattern {
				sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
			}
		}
		before := sys.Stats()
		const rounds = 1000
		for i := 0; i < rounds; i++ {
			for _, a := range pattern {
				sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
			}
		}
		after := sys.Stats()
		off := after.OffChipFetches - before.OffChipFetches
		fmt.Printf("  %-12s %6d off-chip fetches in %d references\n",
			policy, off, rounds*len(pattern))
	}
	fmt.Println("  (the exclusive mini-L2 holds the L1's victims: a shared victim cache)")

	// The library also provides the fully-associative limit directly —
	// Jouppi's 1990 victim cache (the paper's reference [4]) — via
	// NewVictimCacheSystem. An 8-line buffer absorbs the ping-ponging of
	// 4 conflicting pairs at a tiny fraction of the 2KB L2's area.
	vc, err := twolevel.NewVictimCacheSystem(16<<10, 8, line)
	if err != nil {
		log.Fatal(err)
	}
	small := pattern[:8] // 4 pairs, one victim slot each
	for i := 0; i < 4; i++ {
		for _, a := range small {
			vc.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
		}
	}
	before := vc.Stats()
	for i := 0; i < 1000; i++ {
		for _, a := range small {
			vc.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
		}
	}
	off := vc.Stats().OffChipFetches - before.OffChipFetches
	fmt.Printf("  8-line FA buf %6d off-chip fetches in %d references (4 conflicting pairs)\n",
		off, 1000*len(small))

	// The same effect on a real workload: a 4KB exclusive L2 under 16KB
	// L1s removes a measurable slice of off-chip traffic; a conventional
	// L2 that small is almost pure overhead because it duplicates the L1.
	w, err := twolevel.WorkloadByName("doduc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndoduc workload, 16KB+16KB L1, tiny 4KB L2, 2M references:")
	base := twolevel.NewSystem(twolevel.Hierarchy{
		L1I: twolevel.CacheConfig{Size: 16 << 10, LineSize: line, Assoc: 1},
		L1D: twolevel.CacheConfig{Size: 16 << 10, LineSize: line, Assoc: 1},
	})
	bst := base.Run(w.Stream(2_000_000))
	fmt.Printf("  %-12s global miss rate %.4f\n", "no L2", bst.GlobalMissRate())
	for _, policy := range []twolevel.Policy{twolevel.Conventional, twolevel.Exclusive} {
		sys := build(4<<10, policy)
		st := sys.Run(w.Stream(2_000_000))
		fmt.Printf("  %-12s global miss rate %.4f (L2 local hit rate %.3f)\n",
			policy, st.GlobalMissRate(), 1-st.LocalL2MissRate())
	}
}
