// Exclusive-caching demonstration: reproduces the paper's Figure 21
// scenarios directly, then quantifies what the §8 exclusive policy buys
// on a real workload — fewer off-chip fetches, zero duplication between
// levels, and up to 2x+y unique lines held on-chip.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

const line = 16

// tiny builds the paper's Figure-21 geometry: 4-line direct-mapped L1
// caches over a 16-line direct-mapped L2.
func tiny(policy twolevel.Policy) *twolevel.System {
	return twolevel.NewSystem(twolevel.Hierarchy{
		L1I:    twolevel.CacheConfig{Size: 4 * line, LineSize: line, Assoc: 1},
		L1D:    twolevel.CacheConfig{Size: 4 * line, LineSize: line, Assoc: 1},
		L2:     twolevel.CacheConfig{Size: 16 * line, LineSize: line, Assoc: 1},
		Policy: policy,
	})
}

// alternate drives the data cache with an alternating pair of addresses
// and reports how many references were served on-chip at steady state.
func alternate(policy twolevel.Policy, a, b uint64) (onChip float64) {
	sys := tiny(policy)
	for i := 0; i < 8; i++ { // warm up
		sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
		sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: b})
	}
	before := sys.Stats()
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: a})
		sys.Access(twolevel.Ref{Kind: twolevel.Data, Addr: b})
	}
	after := sys.Stats()
	served := float64(after.L1DHits-before.L1DHits) + float64(after.L2Hits-before.L2Hits)
	return served / (2 * rounds)
}

func main() {
	// Figure 21-a: addresses A and E map to the same line in BOTH levels.
	// A conventional hierarchy can keep only one of them; the exclusive
	// hierarchy swaps them between L1 and L2 so both stay on-chip.
	a := uint64(13 * line)
	e := a + 16*line
	fmt.Println("Figure 21-a: conflict in the second level")
	fmt.Printf("  conventional: %.0f%% of references served on-chip\n", 100*alternate(twolevel.Conventional, a, e))
	fmt.Printf("  exclusive   : %.0f%% of references served on-chip\n", 100*alternate(twolevel.Exclusive, a, e))

	// Figure 21-b: A and B conflict only in the first level; both
	// policies keep both lines on-chip, so exclusion buys nothing here.
	b := a + 4*line
	fmt.Println("Figure 21-b: conflict only in the first level")
	fmt.Printf("  conventional: %.0f%% of references served on-chip\n", 100*alternate(twolevel.Conventional, a, b))
	fmt.Printf("  exclusive   : %.0f%% of references served on-chip\n", 100*alternate(twolevel.Exclusive, a, b))

	// On a real workload the effect shows up as capacity: the exclusive
	// hierarchy holds more unique lines on-chip and fetches less from
	// off-chip at identical geometry.
	w, err := twolevel.WorkloadByName("li")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nli workload, 4KB+4KB L1, 32KB 4-way L2, 2M references:")
	for _, policy := range []twolevel.Policy{twolevel.Conventional, twolevel.Exclusive} {
		sys := twolevel.NewSystem(twolevel.Hierarchy{
			L1I:    twolevel.CacheConfig{Size: 4 << 10, LineSize: line, Assoc: 1},
			L1D:    twolevel.CacheConfig{Size: 4 << 10, LineSize: line, Assoc: 1},
			L2:     twolevel.CacheConfig{Size: 32 << 10, LineSize: line, Assoc: 4},
			Policy: policy,
		})
		st := sys.Run(w.Stream(2_000_000))
		fmt.Printf("  %-12s global miss rate %.4f, unique on-chip lines %4d, duplicated %4d\n",
			policy, st.GlobalMissRate(), sys.UniqueOnChipLines(), sys.DuplicatedLines())
	}
	fmt.Println("\n(the exclusive hierarchy can hold up to 2x+y unique lines: 2*256 + 2048 = 2560)")
}
