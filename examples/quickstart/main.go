// Quickstart: simulate one two-level on-chip cache hierarchy over a
// SPEC89-like workload and report the numbers the study is built on —
// miss rates, cycle times, chip area, and time per instruction.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

func main() {
	// An 8KB+8KB split direct-mapped L1 with a mixed 64KB 4-way L2 using
	// the paper's exclusive replacement policy.
	cfg := twolevel.Hierarchy{
		L1I:    twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
		L1D:    twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
		L2:     twolevel.CacheConfig{Size: 64 << 10, LineSize: 16, Assoc: 4, Policy: twolevel.Random},
		Policy: twolevel.Exclusive,
	}
	sys := twolevel.NewSystem(cfg)

	// Drive it with one million references of the gcc1 stand-in workload.
	w, err := twolevel.WorkloadByName("gcc1")
	if err != nil {
		log.Fatal(err)
	}
	stats := sys.Run(w.Stream(1_000_000))

	fmt.Printf("hierarchy      : %s\n", cfg)
	fmt.Printf("L1I miss rate  : %.4f\n", float64(stats.L1IMisses)/float64(stats.InstrRefs))
	fmt.Printf("L1D miss rate  : %.4f\n", float64(stats.L1DMisses)/float64(stats.DataRefs))
	fmt.Printf("L2 local misses: %.4f\n", stats.LocalL2MissRate())
	fmt.Printf("global misses  : %.4f (off-chip fetches per reference)\n", stats.GlobalMissRate())

	// Price the configuration with the timing and area models, then fold
	// everything into the paper's TPI metric.
	l1 := twolevel.OptimalTiming(twolevel.Paper05um,
		twolevel.TimingParams{Size: cfg.L1I.Size, LineSize: 16, Assoc: 1, OutputBits: 64})
	l2 := twolevel.OptimalTiming(twolevel.Paper05um,
		twolevel.TimingParams{Size: cfg.L2.Size, LineSize: 16, Assoc: 4, OutputBits: 64})
	areaRbe := 2*twolevel.CacheAreaRbe(twolevel.TimingParams{Size: cfg.L1I.Size, LineSize: 16, Assoc: 1}, l1.Org) +
		twolevel.CacheAreaRbe(twolevel.TimingParams{Size: cfg.L2.Size, LineSize: 16, Assoc: 4}, l2.Org)

	m := twolevel.Machine{
		L1CycleNS: l1.CycleTime,
		L2CycleNS: l2.CycleTime,
		OffChipNS: 50,
		IssueRate: 1,
	}
	fmt.Printf("processor cycle: %.2f ns (the L1 cycle time)\n", m.L1CycleNS)
	fmt.Printf("L2 access      : %d CPU cycles\n", m.L2Cycles())
	fmt.Printf("chip area      : %.0f rbe\n", areaRbe)
	fmt.Printf("TPI            : %.3f ns\n", m.TPI(stats))
}
