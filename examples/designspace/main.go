// Design-space exploration: the study's central question — given a chip
// area budget, what cache organization is fastest? This example sweeps
// the full 1KB–256KB configuration space for a workload, prints the
// best-performance envelope, and answers the paper's worked example
// ("if 3,000,000 rbe's are available...") for several budgets.
package main

import (
	"flag"
	"fmt"
	"log"

	"twolevel"
)

func main() {
	workload := flag.String("workload", "gcc1", "workload to explore")
	offchip := flag.Float64("offchip", 50, "off-chip miss service time, ns")
	exclusive := flag.Bool("exclusive", false, "use the exclusive two-level policy")
	flag.Parse()

	w, err := twolevel.WorkloadByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	policy := twolevel.Conventional
	if *exclusive {
		policy = twolevel.Exclusive
	}
	opt := twolevel.SweepOptions{
		OffChipNS: *offchip,
		L2Assoc:   4,
		Policy:    policy,
		Refs:      1_000_000,
	}

	fmt.Printf("sweeping %d configurations for %s (%.0fns off-chip, %v policy)...\n",
		len(twolevel.SweepConfigs(opt)), w.Name, *offchip, policy)
	points := twolevel.Sweep(w, opt)

	fmt.Println("\nbest-performance envelope (area → fastest configuration):")
	fmt.Printf("  %-8s %12s %9s\n", "config", "area (rbe)", "TPI (ns)")
	for _, p := range twolevel.Envelope(points) {
		kind := "single-level"
		if p.TwoLevel() {
			kind = "two-level"
		}
		fmt.Printf("  %-8s %12.0f %9.3f   %s\n", p.Label, p.AreaRbe, p.TPINS, kind)
	}

	fmt.Println("\nbest configuration by area budget:")
	for _, budget := range []float64{100_000, 300_000, 1_000_000, 3_000_000, 6_000_000} {
		best, ok := twolevel.BestAtArea(points, budget)
		if !ok {
			fmt.Printf("  %9.0f rbe: nothing fits\n", budget)
			continue
		}
		fmt.Printf("  %9.0f rbe: %-8s TPI %.3f ns (uses %.0f rbe)\n",
			budget, best.Label, best.TPINS, best.AreaRbe)
	}
}
