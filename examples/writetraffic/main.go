// Write-traffic extension: the paper models writes as reads for hit/miss
// purposes (§2.2) and does not time write-backs; this library
// additionally *tracks* them. This example shows where dirty lines go
// under each two-level policy — the conventional hierarchy absorbs most
// write-backs in the L2's duplicate copies, while the exclusive hierarchy
// carries dirty data with its victim transfers.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

func main() {
	w, err := twolevel.WorkloadByName("doduc") // 40% of data refs are stores
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("doduc, 8KB+8KB L1, 64KB 4-way L2, 2M references:")
	fmt.Printf("%-13s %10s %12s %14s %12s\n",
		"policy", "stores", "wb to L2", "wb off-chip", "global MR")
	for _, policy := range []twolevel.Policy{twolevel.Conventional, twolevel.Exclusive, twolevel.Inclusive} {
		sys := twolevel.NewSystem(twolevel.Hierarchy{
			L1I:    twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
			L1D:    twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
			L2:     twolevel.CacheConfig{Size: 64 << 10, LineSize: 16, Assoc: 4},
			Policy: policy,
		})
		st := sys.Run(w.Stream(2_000_000))
		fmt.Printf("%-13s %10d %12d %14d %12.4f\n",
			policy, st.WriteRefs, st.WriteBacksToL2, st.WriteBacksOffChip, st.GlobalMissRate())
	}

	// Single-level for contrast: every dirty victim leaves the chip.
	sys := twolevel.NewSystem(twolevel.Hierarchy{
		L1I: twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
		L1D: twolevel.CacheConfig{Size: 8 << 10, LineSize: 16, Assoc: 1},
	})
	st := sys.Run(w.Stream(2_000_000))
	fmt.Printf("%-13s %10d %12s %14d %12.4f\n",
		"single-level", st.WriteRefs, "-", st.WriteBacksOffChip, st.GlobalMissRate())

	fmt.Println("\nOff-chip traffic (fetches + write-backs) is what a board-level bus sees;")
	fmt.Println("the paper's §2.2 model charges no time for write-backs, and neither does")
	fmt.Println("the TPI model here — the counters quantify the traffic a write-back")
	fmt.Println("hierarchy would add to the 50ns/200ns path.")
}
