// Prefetch demonstration: the paper's reference [4] (Jouppi 1990)
// proposed two small structures for direct-mapped caches — victim caches
// for conflict misses and stream buffers for sequential misses. This
// example runs both against the paper's own answer, a second cache
// level, on two contrasting workloads.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

func main() {
	l1 := twolevel.CacheConfig{Size: 4 << 10, LineSize: 16, Assoc: 1}
	bare := twolevel.Hierarchy{L1I: l1, L1D: l1}

	for _, name := range []string{"fpppp", "tomcatv"} {
		w, err := twolevel.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s with 4KB+4KB direct-mapped L1s (off-chip fetches per reference):\n", name)

		base := twolevel.NewSystem(bare).Run(w.Stream(2_000_000))
		fmt.Printf("  %-28s %.4f\n", "bare", base.GlobalMissRate())

		for _, ways := range []int{4, 8} {
			sb, err := twolevel.NewStreamBufferSystem(bare, 4, ways)
			if err != nil {
				log.Fatal(err)
			}
			sbst := sb.Run(w.Stream(2_000_000))
			fmt.Printf("  + stream buffers (%d-way D)  %.4f  (I hits %d, D hits %d)\n",
				ways, sbst.GlobalMissRate(),
				sb.InstrBuffer().Hits, sb.DataBuffers().Hits())
		}

		vc, err := twolevel.NewVictimCacheSystem(4<<10, 16, 16)
		if err != nil {
			log.Fatal(err)
		}
		vcst := vc.Run(w.Stream(2_000_000))
		fmt.Printf("  %-28s %.4f\n", "+ 16-line victim buffer", vcst.GlobalMissRate())

		two := bare
		two.L2 = twolevel.CacheConfig{Size: 32 << 10, LineSize: 16, Assoc: 4}
		two.Policy = twolevel.Exclusive
		exst := twolevel.NewSystem(two).Run(w.Stream(2_000_000))
		fmt.Printf("  %-28s %.4f\n\n", "+ 32KB exclusive L2", exst.GlobalMissRate())
	}
	fmt.Println("fpppp's huge sequential code rewards stream buffers outright; tomcatv's")
	fmt.Println("SEVEN interleaved arrays need more buffer ways than Jouppi's four before")
	fmt.Println("prefetching bites, while its conflict misses reward the victim buffer.")
	fmt.Println("The second level attacks everything with capacity — the progression")
	fmt.Println("from [4] to this paper.")
}
